"""The FPGA backend: the paper's original target, behind the protocol.

Wraps the pre-backend plumbing — :func:`repro.hw.device.get_device` name
resolution, :class:`repro.core.auto_hls.AutoHLS` estimation,
:class:`repro.core.bundle_evaluation.BundleEvaluator` step-2 selection and
:class:`repro.hw.power.FPGAPowerModel` — without changing any of it, so an
FPGA-only sweep through the backend seam is byte-identical to one before it
(canonical device strings are the legacy display names, e.g. ``PYNQ-Z1``).

``repro.core`` / ``repro.sweep`` are imported lazily inside methods: both
packages import :mod:`repro.backend` at module level.
"""

from __future__ import annotations

from typing import Optional

from repro.backend.base import Backend, backend_catalog
from repro.hw.device import FPGADevice, get_device, list_devices, resolve_devices


class FPGABackend(Backend):
    """Target resolution, estimation and prep for the FPGA devices."""

    name = "fpga"
    requires_fit = True

    # ------------------------------------------------------------ resolution
    def device_names(self) -> list[str]:
        return list_devices()

    def resolve_device(self, name: str) -> FPGADevice:
        try:
            return get_device(name)
        except KeyError:
            raise ValueError(
                f"Unknown fpga device '{name}'. {backend_catalog()}"
            ) from None

    def canonical_name(self, device: FPGADevice) -> str:
        # The legacy display name: SweepTask.device, uids, journal metadata,
        # and disk-cache namespaces all predate the backend seam and must
        # not change under it.
        return device.name

    def resolve_spec(self, name: str) -> list[FPGADevice]:
        try:
            return resolve_devices(name)
        except KeyError:
            raise ValueError(
                f"Unknown fpga device '{name}'. {backend_catalog()}"
            ) from None

    # ----------------------------------------------------------- clock/budget
    def default_clock_mhz(self, device: FPGADevice) -> float:
        return device.default_clock_mhz

    def validate_clock(self, device: FPGADevice, clock_mhz: float) -> float:
        return device.validate_clock(clock_mhz)

    def resource_constraint(self, device: FPGADevice, utilization_limit: float = 1.0):
        from repro.core.constraints import ResourceConstraint

        return ResourceConstraint.for_device(device, utilization_limit)

    # ------------------------------------------------------------- estimation
    def create_engine(self, device: FPGADevice, clock_mhz: Optional[float] = None):
        from repro.core.auto_hls import AutoHLS

        return AutoHLS(device, clock_mhz=clock_mhz)

    def engine_fingerprint(self, engine) -> str:
        from repro.sweep.disk_cache import coefficients_fingerprint

        return coefficients_fingerprint(engine.coefficients)

    # ------------------------------------------------------------ preparation
    def create_bundle_evaluator(self, task, device: FPGADevice, accuracy_model):
        from repro.core.bundle_evaluation import BundleEvaluator

        return BundleEvaluator(task=task, device=device, accuracy_model=accuracy_model)

    # ------------------------------------------------------------------ power
    def power_model(self, device: FPGADevice):
        from repro.hw.power import FPGAPowerModel

        return FPGAPowerModel(device)
