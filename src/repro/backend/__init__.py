"""Unified hardware backends (FPGA and GPU) behind one protocol.

See :mod:`repro.backend.base` for the protocol and the target-spec grammar
(``fpga:pynq-z1``, ``gpu:jetson-tx2``, bare names default to fpga).  The two
built-in backends register on import; new backends call
:func:`register_backend` and inherit the whole sweep/shard/compare stack.
"""

from repro.backend.base import (
    Backend,
    DEFAULT_BACKEND,
    ResolvedTarget,
    backend_catalog,
    backend_for,
    backend_name_for,
    get_backend,
    infer_backend,
    list_backends,
    parse_target,
    register_backend,
    resolve_targets,
)
from repro.backend.fpga import FPGABackend
from repro.backend.gpu import GPUBackend

register_backend(FPGABackend())
register_backend(GPUBackend())

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "FPGABackend",
    "GPUBackend",
    "ResolvedTarget",
    "backend_catalog",
    "backend_for",
    "backend_name_for",
    "get_backend",
    "infer_backend",
    "list_backends",
    "parse_target",
    "register_backend",
    "resolve_targets",
]
