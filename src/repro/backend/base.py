"""The unified hardware-backend protocol and its registry.

The paper co-designs DNNs against a single FPGA; the reproduction grew the
same assumption into every layer (``CoDesignFlow`` constructed ``AutoHLS``
directly, ``SweepTask``/``build_grid`` resolved names through ``hw/`` only).
:class:`Backend` lifts that seam into a protocol: each backend knows how to
resolve its target names, build an estimation engine (scalar + batch), run
the once-per-target preparation, and supply resource/power models — so the
search, sweep, shard and compare layers are backend-agnostic.

Target specs are strings of the form ``backend:device``::

    fpga:pynq-z1      # explicit backend prefix
    gpu:jetson-tx2    # the GPU roofline backend
    pynq-z1           # bare names default to the fpga backend
    all               # every device of the (fpga) backend

Canonical device strings are backend-defined.  The FPGA backend canonicalizes
to the device's display name (``PYNQ-Z1``) — exactly what pre-backend sweeps
stored — so legacy task uids, journals, checkpoints and disk-cache shards are
byte-identical.  The GPU backend canonicalizes to ``gpu:<slug>`` so the two
namespaces can never collide.

Registering a new backend is two steps: subclass :class:`Backend` and call
:func:`register_backend` with an instance.  Everything downstream (grid
building, prep shipping, compare sections, CLI validation) picks it up from
the registry.

This module lazy-imports ``repro.core`` / ``repro.sweep`` inside methods:
both packages import :mod:`repro.backend` at module level.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.bundle import Bundle
    from repro.core.constraints import ResourceConstraint
    from repro.detection.task import DetectionTask


class Backend(ABC):
    """One hardware substrate the co-design flow can target.

    Implementations are stateless singletons living in the registry; all
    per-target state travels through the engine objects they create and the
    wire-serializable :class:`~repro.sweep.runner.PreparedTarget`.
    """

    #: Registry key and target-spec prefix (``fpga`` in ``fpga:pynq-z1``).
    name: str = ""

    #: Whether :meth:`CoDesignFlow.step1_modeling` must fit model
    #: coefficients before estimates are meaningful.  Fit-free backends
    #: prepare with ``coefficients=None``.
    requires_fit: bool = True

    # ------------------------------------------------------------ resolution
    @abstractmethod
    def device_names(self) -> list[str]:
        """The registered target names of this backend (for error listings)."""

    @abstractmethod
    def resolve_device(self, name: str):
        """Resolve one target name to its device object.

        Raises :class:`ValueError` (listing this backend's devices) for
        unknown names.
        """

    @abstractmethod
    def canonical_name(self, device) -> str:
        """The canonical device string stored on ``SweepTask.device``."""

    def resolve_spec(self, name: str) -> list:
        """Resolve a single spec token; ``all`` expands to every device."""
        if name.strip().lower() == "all":
            return [self.resolve_device(known) for known in self.device_names()]
        return [self.resolve_device(name)]

    def device_of(self, device_str: str):
        """Resolve a canonical device string back to its device object."""
        name = device_str
        prefix = f"{self.name}:"
        if name.lower().startswith(prefix):
            name = name[len(prefix):]
        return self.resolve_device(name)

    # ----------------------------------------------------------- clock/budget
    @abstractmethod
    def default_clock_mhz(self, device) -> float:
        """The clock a target runs at when the task does not pin one."""

    @abstractmethod
    def validate_clock(self, device, clock_mhz: float) -> float:
        """Validate an explicit clock request; returns the effective clock."""

    @abstractmethod
    def resource_constraint(self, device, utilization_limit: float = 1.0) -> "ResourceConstraint":
        """The resource budget the search must respect on this target."""

    # ------------------------------------------------------------- estimation
    @abstractmethod
    def create_engine(self, device, clock_mhz: Optional[float] = None):
        """Build the estimation engine (the ``auto_hls`` slot of the flow).

        The engine contract: ``estimate(config) -> PerformanceEstimate``,
        ``estimate_batch(configs)`` bit-identical to the scalar loop (so
        :func:`repro.search.cache.resolve_batch_estimator` vectorizes it),
        plus ``clock_mhz``, ``device`` and a settable ``coefficients``
        attribute (``None`` on fit-free backends).
        """

    @abstractmethod
    def engine_fingerprint(self, engine) -> str:
        """Stable fingerprint of the engine's model state.

        Namespaces the persistent disk cache and tags prepared state, so
        estimates from differently-fitted models never share a cache slot.
        """

    # ------------------------------------------------------------ preparation
    def create_bundle_evaluator(self, task: "DetectionTask", device, accuracy_model):
        """The step-2 bundle evaluator, or ``None`` on backends that select
        bundles without one (see :meth:`select_bundles`)."""
        return None

    def select_bundles(self, bundles: Sequence["Bundle"], top_n: int) -> list:
        """Fit-free bundle selection used when there is no evaluator.

        Deterministic by construction: the first ``top_n`` catalogue bundles,
        in catalogue order.
        """
        return list(bundles)[:top_n]

    # ------------------------------------------------------------------ power
    @abstractmethod
    def power_model(self, device):
        """The board-power / energy model of this target."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


@dataclass(frozen=True)
class ResolvedTarget:
    """One ``backend:device`` pair resolved from a target spec."""

    backend: Backend
    device: object

    @property
    def canonical(self) -> str:
        return self.backend.canonical_name(self.device)


# --------------------------------------------------------------------- registry
_BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register a :class:`Backend` instance under its ``name``."""
    if not backend.name:
        raise ValueError("Backend.name must be a non-empty string")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"Unknown backend '{name}'. {backend_catalog()}"
        ) from None


def list_backends() -> list[Backend]:
    """All registered backends, in registration order."""
    return list(_BACKENDS.values())


def backend_catalog() -> str:
    """Human-readable listing of every backend and its devices."""
    parts = [
        f"{backend.name} ({', '.join(backend.device_names())})"
        for backend in _BACKENDS.values()
    ]
    return f"Registered backends: {'; '.join(parts)}"


DEFAULT_BACKEND = "fpga"


# ------------------------------------------------------------------ target specs
def parse_target(spec: str) -> ResolvedTarget:
    """Parse one ``backend:device`` (or bare-device) spec token."""
    token = spec.strip()
    if not token:
        raise ValueError(f"Empty target spec in {spec!r}. {backend_catalog()}")
    if ":" in token:
        prefix, _, device_name = token.partition(":")
        backend = _BACKENDS.get(prefix.strip().lower())
        if backend is None:
            raise ValueError(
                f"Unknown backend '{prefix.strip()}' in target '{token}'. {backend_catalog()}"
            )
        return ResolvedTarget(backend, backend.resolve_device(device_name.strip()))
    backend = get_backend(DEFAULT_BACKEND)
    return ResolvedTarget(backend, backend.resolve_device(token))


def resolve_targets(spec: Union[str, Iterable[str]]) -> list[ResolvedTarget]:
    """Resolve a target spec (comma string or sequence) to unique targets.

    ``fpga:all`` / bare ``all`` expand to every device of that backend; order
    is preserved and duplicates are dropped (first occurrence wins), matching
    the legacy :func:`repro.hw.device.resolve_devices` semantics.
    """
    if isinstance(spec, str):
        tokens = [token for token in spec.split(",") if token.strip()]
    else:
        tokens = [str(token) for token in spec]
    if not tokens:
        raise ValueError(f"No targets in spec {spec!r}. {backend_catalog()}")
    resolved: list[ResolvedTarget] = []
    seen: set[str] = set()
    for token in tokens:
        token = token.strip()
        if ":" in token:
            prefix, _, rest = token.partition(":")
            backend = _BACKENDS.get(prefix.strip().lower())
            if backend is None:
                raise ValueError(
                    f"Unknown backend '{prefix.strip()}' in target '{token}'. {backend_catalog()}"
                )
            devices = backend.resolve_spec(rest.strip())
        else:
            backend = get_backend(DEFAULT_BACKEND)
            devices = backend.resolve_spec(token)
        for device in devices:
            canonical = backend.canonical_name(device)
            if canonical not in seen:
                seen.add(canonical)
                resolved.append(ResolvedTarget(backend, device))
    return resolved


def backend_name_for(device_str: str) -> str:
    """The backend name a canonical device string belongs to.

    Canonical strings are prefix-tagged for every backend except the default
    (legacy FPGA names like ``PYNQ-Z1`` carry no prefix).
    """
    if ":" in device_str:
        prefix = device_str.partition(":")[0].lower()
        if prefix in _BACKENDS:
            return prefix
    return DEFAULT_BACKEND


def backend_for(device_str: str) -> Backend:
    """The backend a canonical device string belongs to."""
    return _BACKENDS[backend_name_for(device_str)]


def infer_backend(device) -> Backend:
    """Infer the backend of a device *object* (for ``CoDesignFlow`` defaults).

    GPU devices are recognized structurally (they carry ``cuda_cores``), so
    callers holding a :class:`repro.gpu.device.GPUDevice` need not name the
    backend explicitly.
    """
    if getattr(device, "cuda_cores", None) is not None:
        return get_backend("gpu")
    return get_backend(DEFAULT_BACKEND)
