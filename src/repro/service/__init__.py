"""Persistent multi-tenant co-design job service.

The paper's flow is a one-shot search; this package is the
"co-design-as-a-service" tier from the ROADMAP: a long-running
coordinator that accepts many named sweep jobs from many clients and
drives them over the existing :mod:`repro.shard` lease protocol with a
shared, job-agnostic worker fleet.

* :mod:`repro.service.jobs` — :class:`JobQueue`: validated job admission
  (:class:`repro.sweep.SweepSpec`), one directory per job under the
  service root (``<root>/jobs/<uid>/`` with the PR 4/6 sidecar formats
  unchanged), and a fsynced ``_service.jsonl`` journal that survives
  SIGKILL (torn-tail-tolerant replay requeues unfinished jobs).
* :mod:`repro.service.coordinator` — :class:`ServiceCoordinator`: the
  PR 5 HTTP surface extended with ``/v1/jobs`` routes, fair interleaved
  leasing across concurrent jobs (one :class:`~repro.shard.LeaseBoard`
  per running job), shared-secret auth, and an estimator-cache exchange
  hub at ``<root>/cache``.
* :mod:`repro.service.client` — :class:`ServiceClient`: thin typed
  wrapper over the job routes for the CLI (`serve` / `submit` / `jobs` /
  `job status|cancel|result`).

Every job runs through a stock :class:`~repro.sweep.SweepRunner`, so
``--resume``, ``compare`` and ``telemetry report`` work on any job
directory verbatim, and a job's journals are byte-identical to a local
single-machine run of the same spec.
"""

from repro.service.client import ServiceClient
from repro.service.coordinator import ServiceCoordinator, ServiceStopped
from repro.service.jobs import (
    JOB_SPEC_FILENAME,
    JOB_STATES,
    JOBS_DIRNAME,
    SERVICE_LOG_FILENAME,
    TERMINAL_STATES,
    Job,
    JobQueue,
    load_service_log,
)

__all__ = [
    "Job",
    "JobQueue",
    "ServiceClient",
    "ServiceCoordinator",
    "ServiceStopped",
    "load_service_log",
    "JOB_SPEC_FILENAME",
    "JOBS_DIRNAME",
    "JOB_STATES",
    "SERVICE_LOG_FILENAME",
    "TERMINAL_STATES",
]
