"""HTTP face of the job service: many jobs, one lease surface, one fleet.

Architecture: every admitted job is driven by a stock
:class:`~repro.sweep.runner.SweepRunner` in its own daemon thread, with a
:class:`_ServiceTransport` plugged in — so grid validation, shared
preparation, resume, cost ordering, checkpointing and timings are the
battle-tested single-run machinery, unchanged.  The transport builds one
:class:`~repro.shard.coordinator.LeaseBoard` per running job (lease ids
prefixed ``<job_uid>:`` so heartbeats partition unambiguously) and
attaches it to the shared :class:`ServiceCoordinator`, which fans a
**single** worker fleet across all attached boards:

* workers register once at the service level and are *adopted* into each
  job board on first contact — they stay job-agnostic;
* ``/v1/lease`` round-robins one cell at a time across the running jobs
  (fair interleaving: a wide job cannot starve a small one);
* ``/v1/report`` routes by the payload's ``job`` field (falling back to
  uid search for job-oblivious workers);
* cancellation detaches the board — lease revocation by omission: the
  board stops granting, in-flight leases die with their heartbeats, and
  nothing requeues.

The coordinator process is crash-only: ``stop()`` (and SIGKILL) abandon
running jobs without writing a terminal state, and the next start replays
``_service.jsonl``, requeues them, and their runners resume from the
per-job checkpoints — journals stay byte-identical to an uninterrupted
run.
"""

from __future__ import annotations

import pathlib
import threading
import time
from http.server import ThreadingHTTPServer
from typing import Callable, Mapping, Optional

from repro.service.jobs import Job, JobQueue
from repro.shard.coordinator import LeaseBoard, _CoordinatorHandler, parse_report
from repro.shard.protocol import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_POLL_S,
    PROTOCOL_VERSION,
    ShardProtocolError,
    prepared_to_wire,
    require,
    task_to_wire,
)
import repro.telemetry as telemetry
from repro.sweep.checkpoint import CHECKPOINT_FILENAME, checkpoint_cells, load_checkpoint, scan_checkpoint
from repro.sweep.runner import SweepResult, run_sweep_task
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["ServiceCoordinator", "ServiceStopped"]


class ServiceStopped(RuntimeError):
    """Raised inside a job driver when the service is shutting down.

    Deliberately *not* a job failure: the driver thread unwinds without
    recording a terminal state, which is exactly the crash-recovery path —
    the job replays as queued on the next start and resumes from its
    checkpoint.
    """


class _ServiceTransport:
    """Per-job transport: expose the job's cells on the shared HTTP surface.

    The local-run counterpart (:class:`repro.shard.CoordinatorTransport`)
    owns a listening socket; this one attaches its board to the
    long-running service instead and simply waits — ticking the board's
    lease reaper — until the board settles, the job is cancelled, or the
    service stops.
    """

    def __init__(self, service: "ServiceCoordinator", job: Job) -> None:
        self.service = service
        self.job = job

    def execute(self, runner, order, preparations):
        job = self.job
        board = LeaseBoard(
            {index: runner.tasks[index] for index in order},
            list(order),
            retries=runner.retries,
            backoff=runner._backoff_delay,
            timeouts={index: runner.effective_timeout_for(index) for index in order},
            lease_ttl_s=self.service.lease_ttl_s,
            on_outcome=lambda index, outcome: runner.settle_outcome(outcome),
            on_failure=lambda index, failure: runner.settle_failure(failure),
            lease_prefix=f"{job.uid}:",
            job=job.uid,
        )
        prepared_by_key = {}
        prep_keys: dict[int, Optional[str]] = {}
        for index in order:
            artifact = preparations.get(runner.tasks[index].prep_key)
            if artifact is None:
                prep_keys[index] = None
            else:
                prepared_by_key[artifact.wire_key] = artifact
                prep_keys[index] = artifact.wire_key
        self.service._attach(job, board, prepared_by_key, prep_keys)
        try:
            while not board.done:
                if self.service._stopping.is_set():
                    raise ServiceStopped(f"service stopping with job {job.uid} in flight")
                if job.cancel.is_set():
                    logger.info("service: job %s cancelled with %d cell(s) unsettled",
                                job.uid, board.counts()["cells"] - board.counts()["settled"])
                    break
                board.expire_leases()
                job.cancel.wait(self.service.tick_s)
        finally:
            self.service._detach(job, board)
        return dict(board.outcomes), dict(board.failures)


class _ServiceHandler(_CoordinatorHandler):
    """The shard handler plus the ``/v1/jobs`` routes."""

    coordinator: "ServiceCoordinator"

    server_version = "repro-service"

    def _handle_get(self, route: str) -> Optional[dict]:
        reply = super()._handle_get(route)
        if reply is not None:
            return reply
        if route == "/v1/jobs":
            return self.coordinator.handle_jobs_list()
        if route.startswith("/v1/jobs/"):
            rest = route[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                return self.coordinator.handle_job_result(rest[: -len("/result")])
            if rest and "/" not in rest:
                return self.coordinator.handle_job_status(rest)
        return None

    def _handle_post(self, route: str, payload: dict) -> Optional[dict]:
        if route == "/v1/jobs":
            return self.coordinator.handle_job_submit(payload)
        return super()._handle_post(route, payload)

    def _handle_delete(self, route: str) -> Optional[dict]:
        if route.startswith("/v1/jobs/"):
            rest = route[len("/v1/jobs/"):]
            if rest and "/" not in rest:
                return self.coordinator.handle_job_cancel(rest)
        return super()._handle_delete(route)


class ServiceCoordinator:
    """Persistent multi-tenant coordinator over a service root directory.

    ``start()`` binds the HTTP server, re-admits journalled jobs, and
    returns; job driver threads and the HTTP server run as daemons until
    ``stop()``.  ``serve()`` is the blocking CLI entry point.
    """

    def __init__(
        self,
        root,
        *,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        token: Optional[str] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        poll_s: float = DEFAULT_POLL_S,
        max_active: int = 4,
        tick_s: float = 0.1,
        clock: Callable[[], float] = time.time,
        task_fn: Callable = run_sweep_task,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if heartbeat_s <= 0 or heartbeat_s >= lease_ttl_s:
            raise ValueError("heartbeat_s must be positive and below lease_ttl_s")
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.root = pathlib.Path(root)
        self.token = token or None
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.tick_s = tick_s
        self.clock = clock
        self.task_fn = task_fn
        self.queue = JobQueue(self.root, clock=clock)
        #: Estimator-cache exchange hub shared by every job and worker.
        self.cache_dir = self.root / "cache"
        self.cache_dir.mkdir(parents=True, exist_ok=True)

        self._lock = threading.Lock()
        self._boards: dict[str, LeaseBoard] = {}
        self._prep_keys: dict[str, dict[int, Optional[str]]] = {}
        self._prepared_wire: dict[str, dict] = {}
        self._rr: list[str] = []  # round-robin order of running jobs
        self._workers: dict[str, dict] = {}
        self._worker_seq = 0
        self._lease_totals = {
            "granted": 0, "heartbeats": 0, "completed": 0, "failed": 0,
            "requeued": 0, "expired": 0, "revoked": 0, "duplicates": 0,
        }
        self._stopping = threading.Event()
        self._admission = threading.Semaphore(max_active)
        self._threads: list[threading.Thread] = []
        self._sink = None

        handler = type("BoundServiceHandler", (_ServiceHandler,),
                       {"coordinator": self})
        self.server = ThreadingHTTPServer(bind, handler)
        self.server.daemon_threads = True
        self._server_thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------------- address
    @property
    def address(self) -> tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind, re-admit journalled jobs, return (everything is a daemon)."""
        if telemetry.enabled() and telemetry.sink() is None:
            from repro.telemetry import TELEMETRY_FILENAME, TelemetrySink

            # One root-level sidecar for the whole service; job attribution
            # rides on the boards' per-event ``job`` labels.
            self._sink = TelemetrySink(str(self.root / TELEMETRY_FILENAME),
                                       fresh=False, clock=self.clock)
            telemetry.set_sink(self._sink)
        self._server_thread = threading.Thread(
            target=self.server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name="service-http",
        )
        self._server_thread.start()
        logger.info("service: coordinator listening on %s (root %s)",
                    self.url, self.root)
        for job in self.queue.jobs():
            if job.state == "queued":
                self._spawn(job)

    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Hard stop: abandon running jobs (they resume on the next start)."""
        self._stopping.set()
        self.server.shutdown()
        if self._server_thread is not None:
            self._server_thread.join(timeout=join_timeout_s)
        self.server.server_close()
        for thread in self._threads:
            thread.join(timeout=join_timeout_s)
        if self._sink is not None:
            telemetry.set_sink(None)
            self._sink = None

    def serve(self, stop: Optional[threading.Event] = None) -> None:
        """Blocking variant for the CLI: run until interrupted."""
        self.start()
        try:
            while not self._stopping.is_set():
                if stop is not None and stop.is_set():
                    break
                time.sleep(0.2)
        finally:
            self.stop()

    # --------------------------------------------------------------- job driving
    def _spawn(self, job: Job) -> None:
        thread = threading.Thread(target=self._drive, args=(job,), daemon=True,
                                  name=f"service-job-{job.uid}")
        self._threads.append(thread)
        thread.start()

    def _drive(self, job: Job) -> None:
        """Run one job start-to-finish under the admission semaphore."""
        with self._admission:
            if self._stopping.is_set():
                return  # stays queued in the journal; next start resumes it
            if job.cancel.is_set():
                if job.state != "cancelled":
                    self.queue.set_state(job, "cancelled")
                return
            self.queue.set_state(job, "preparing")
            checkpoint = job.directory / CHECKPOINT_FILENAME
            resume = str(checkpoint) if checkpoint.exists() else None
            try:
                runner = job.spec.build_runner(
                    cache_dir=str(job.directory),
                    transport=_ServiceTransport(self, job),
                    resume_from=resume,
                    task_fn=self.task_fn,
                    clock=self.clock,
                )
                result = runner.run()
            except ServiceStopped:
                return  # no terminal record: replay requeues and resumes
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                logger.exception("service: job %s failed", job.uid)
                self.queue.set_state(job, "failed",
                                     error=f"{type(exc).__name__}: {exc}")
                return
            job.result = result
            if job.cancel.is_set():
                self.queue.set_state(job, "cancelled")
            elif result.failures:
                self.queue.set_state(
                    job, "failed",
                    error=f"{len(result.failures)} of {job.total_cells} cell(s) failed",
                )
            else:
                self.queue.set_state(job, "done")
            telemetry.event("service.job.settled", job=job.uid, state=job.state)

    def _attach(self, job: Job, board: LeaseBoard, prepared_by_key: Mapping,
                prep_keys: Mapping) -> None:
        with self._lock:
            self._boards[job.uid] = board
            self._prep_keys[job.uid] = dict(prep_keys)
            for key, artifact in prepared_by_key.items():
                if key not in self._prepared_wire:
                    self._prepared_wire[key] = prepared_to_wire(artifact)
            if job.uid not in self._rr:
                self._rr.append(job.uid)
        self.queue.set_state(job, "running")
        telemetry.event("service.job.attached", job=job.uid,
                        cells=board.counts()["cells"])

    def _detach(self, job: Job, board: LeaseBoard) -> None:
        # Read the board's counters before taking the service lock: board
        # locks are never acquired while the service lock is held.
        counters = board.metrics_counts()
        with self._lock:
            self._boards.pop(job.uid, None)
            self._prep_keys.pop(job.uid, None)
            if job.uid in self._rr:
                self._rr.remove(job.uid)
            for key, value in counters.items():
                self._lease_totals[key] = self._lease_totals.get(key, 0) + value

    # ------------------------------------------------------------ worker fleet
    def _touch_worker(self, worker_id: str) -> dict:
        """Update a worker's liveness, adopting ids from before a restart.

        A persistent service outlives any single coordinator process; a
        worker that registered with a previous incarnation keeps its id,
        so unknown ids are re-admitted instead of rejected.
        """
        now = time.monotonic()
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                info = {"name": f"reattached-{worker_id}", "last_seen": now,
                        "leased": 0, "completed": 0, "errors": 0, "busy_s": 0.0}
                self._workers[worker_id] = info
            info["last_seen"] = now
            return info

    def handle_register(self, payload: Mapping) -> dict:
        version = payload.get("version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ShardProtocolError(
                f"worker speaks protocol v{version}, coordinator is v{PROTOCOL_VERSION}"
            )
        name = str(payload.get("name") or "worker")
        with self._lock:
            while True:
                self._worker_seq += 1
                worker_id = f"w{self._worker_seq}"
                if worker_id not in self._workers:
                    break
            self._workers[worker_id] = {
                "name": name, "last_seen": time.monotonic(),
                "leased": 0, "completed": 0, "errors": 0, "busy_s": 0.0,
            }
            grid_size = 0
        for board in self._running_boards().values():
            grid_size += board.counts()["cells"]
        logger.info("service: worker %s (%s) registered", worker_id, name)
        telemetry.event("service.worker.registered", worker=worker_id,
                        worker_name=name)
        return {
            "worker_id": worker_id,
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_s": self.heartbeat_s,
            "poll_s": self.poll_s,
            "grid_size": grid_size,
            "cache": True,
            "service": True,
        }

    def _running_boards(self) -> dict[str, LeaseBoard]:
        with self._lock:
            return {uid: self._boards[uid] for uid in list(self._rr)
                    if uid in self._boards}

    def handle_lease(self, payload: Mapping) -> dict:
        worker_id = require(payload, "worker_id", str)
        slots = max(int(payload.get("slots", 1)), 0)
        known = {str(key) for key in payload.get("known_preps", [])}
        info = self._touch_worker(worker_id)
        with self._lock:
            order = list(self._rr)
            if order:
                # Rotate the round-robin cursor so successive lease calls
                # start with a different job even at one cell per call.
                self._rr.append(self._rr.pop(0))
            boards = {uid: self._boards[uid] for uid in order
                      if uid in self._boards}
        leased: list[tuple[str, object]] = []
        # Fair interleave *within* the call too: one cell per job per pass.
        progress = True
        while len(leased) < slots and progress:
            progress = False
            for job_uid in order:
                if len(leased) >= slots:
                    break
                board = boards.get(job_uid)
                if board is None:
                    continue
                board.adopt_worker(worker_id, info["name"])
                cells = board.lease(worker_id, 1)
                if cells:
                    leased.append((job_uid, cells[0]))
                    progress = True
        prepared: dict[str, dict] = {}
        wire_cells = []
        with self._lock:
            for job_uid, cell in leased:
                prep_key = self._prep_keys.get(job_uid, {}).get(cell.index)
                if prep_key is not None and prep_key not in known:
                    wire = self._prepared_wire.get(prep_key)
                    if wire is not None:
                        prepared[prep_key] = wire
                wire_cells.append({
                    "lease_id": cell.lease_id,
                    "uid": cell.task.uid,
                    "task": task_to_wire(cell.task),
                    "prep": prep_key,
                    "timeout_s": cell.timeout_s,
                    "job": job_uid,
                })
            if wire_cells:
                info["leased"] = info.get("leased", 0) + len(wire_cells)
        return {
            "cells": wire_cells,
            "prepared": prepared,
            # A persistent service is never "done": idle workers poll (or
            # exit on their own --idle-timeout-s), ready for the next job.
            "done": False,
            "retry_after_s": self.poll_s,
        }

    def handle_report(self, payload: Mapping) -> dict:
        worker_id, lease_id, uid, kwargs = parse_report(payload)
        info = self._touch_worker(worker_id)
        job_uid = payload.get("job")
        board = None
        boards = self._running_boards()
        if isinstance(job_uid, str) and job_uid:
            board = boards.get(job_uid)
        else:
            # Back-compat: a job-oblivious worker's report is routed by uid.
            board = next((b for b in boards.values() if b.has_cell(uid)), None)
        if board is None:
            # Cancelled / settled / unknown job: acknowledge without acting,
            # exactly like a duplicate — requeue suppression on cancel.
            return {"accepted": False, "reason": "unknown-job", "done": False}
        board.adopt_worker(worker_id, info["name"])
        accepted, reason = board.report(worker_id, lease_id, uid, **kwargs)
        if accepted:
            with self._lock:
                if "outcome" in kwargs:
                    info["completed"] = info.get("completed", 0) + 1
                    info["busy_s"] = info.get("busy_s", 0.0) + max(
                        float(kwargs.get("duration_s", 0.0)), 0.0)
                else:
                    info["errors"] = info.get("errors", 0) + 1
        return {"accepted": accepted, "reason": reason, "done": False}

    def handle_heartbeat(self, payload: Mapping) -> dict:
        worker_id = require(payload, "worker_id", str)
        lease_ids = [str(l) for l in payload.get("lease_ids", [])]
        info = self._touch_worker(worker_id)
        boards = self._running_boards()
        by_job: dict[str, list[str]] = {}
        lost: list[str] = []
        for lease_id in lease_ids:
            job_uid, sep, _ = lease_id.rpartition(":")
            if sep and job_uid in boards:
                by_job.setdefault(job_uid, []).append(lease_id)
            else:
                # The owning board is gone (job cancelled, settled, or the
                # lease predates a restart): the lease is lost.
                lost.append(lease_id)
        for job_uid, ids in by_job.items():
            board = boards[job_uid]
            board.adopt_worker(worker_id, info["name"])
            lost.extend(board.heartbeat(worker_id, ids))
        with self._lock:
            self._lease_totals["heartbeats"] += 1
        return {"ok": True, "lost": lost, "done": False}

    # ------------------------------------------------------------ cache routes
    def handle_cache_pull(self, payload: Mapping) -> dict:
        require(payload, "worker_id", str)
        from repro.sweep.disk_cache import read_cache_records

        namespaces = payload.get("namespaces")
        if namespaces is not None and not isinstance(namespaces, list):
            raise ShardProtocolError("'namespaces' must be a list when present")
        records = read_cache_records(self.cache_dir, namespaces=namespaces)
        return {"records": records, "count": len(records), "enabled": True}

    def handle_cache_push(self, payload: Mapping) -> dict:
        require(payload, "worker_id", str)
        records = require(payload, "records", list)
        from repro.sweep.disk_cache import append_cache_records

        accepted = append_cache_records(self.cache_dir, records, shard="pushed")
        if accepted:
            telemetry.event("service.cache.pushed", records=accepted)
        return {"accepted": accepted, "enabled": True}

    # -------------------------------------------------------------- job routes
    def _get_job(self, uid: str) -> Job:
        try:
            return self.queue.get(uid)
        except KeyError:
            raise ShardProtocolError(f"unknown job '{uid}'") from None

    def handle_job_submit(self, payload: Mapping) -> dict:
        if self._stopping.is_set():
            raise ShardProtocolError("service is shutting down")
        from repro.sweep.spec import SweepSpec

        spec_payload = payload.get("spec")
        if not isinstance(spec_payload, Mapping):
            raise ShardProtocolError("submit payload must carry a 'spec' object")
        try:
            spec = SweepSpec.from_payload(spec_payload)
        except ValueError as exc:
            raise ShardProtocolError(f"invalid job spec: {exc}") from None
        name = payload.get("name")
        job = self.queue.submit(spec, name=str(name) if name else None)
        telemetry.event("service.job.submitted", job=job.uid,
                        cells=job.total_cells)
        self._spawn(job)
        return {"job": job.uid, "name": job.name, "state": job.state,
                "cells": job.total_cells}

    def handle_jobs_list(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "service": True,
            "jobs": [self._job_summary(job) for job in self.queue.jobs()],
        }

    def handle_job_status(self, uid: str) -> dict:
        job = self._get_job(uid)
        summary = self._job_summary(job)
        detail: dict[str, dict] = {}
        for task in job.spec.build_tasks():
            detail[task.uid] = {"status": "pending", "attempts": 0, "worker": None}
        for cell_uid, kind in checkpoint_cells(job.directory / CHECKPOINT_FILENAME).items():
            entry = detail.get(cell_uid)
            if entry is not None:
                entry["status"] = "completed" if kind == "outcome" else "failed"
        board = self._running_boards().get(uid)
        failures: list[dict] = []
        if board is not None:
            for state in board.cell_states():
                entry = detail.get(state["uid"])
                if entry is None:
                    continue
                entry["attempts"] = state["attempts"]
                entry["worker"] = state["worker"]
                if state["status"] == "leased":
                    entry["status"] = "leased"
                elif state["status"] == "settled":
                    entry["status"] = "failed" if state["failed"] else "completed"
            failures = [f.as_dict() for _i, f in sorted(board.failures.items())]
        elif job.terminal:
            status = load_checkpoint(job.directory / CHECKPOINT_FILENAME)
            failures = [status.failures[u].as_dict() for u in sorted(status.failures)]
        summary["cells_detail"] = detail
        summary["failures"] = failures
        return summary

    def handle_job_result(self, uid: str) -> dict:
        job = self._get_job(uid)
        if not job.terminal:
            raise ShardProtocolError(
                f"job '{uid}' is {job.state}; the result is available once it settles"
            )
        result = job.result if job.result is not None else self._rebuild_result(job)
        return {"job": job.uid, "name": job.name, "state": job.state,
                "sweep": result.as_dict()}

    def handle_job_cancel(self, uid: str) -> dict:
        job = self._get_job(uid)
        if job.terminal:
            return {"job": job.uid, "state": job.state, "cancelled": False}
        job.cancel.set()
        if job.state == "queued":
            # Not yet admitted: settle immediately instead of waiting for
            # the driver thread to reach the semaphore.
            self.queue.set_state(job, "cancelled")
            final = "cancelled"
        else:
            # Running: the transport notices within a tick, detaches the
            # board (requeue suppression) and the driver records the state;
            # outstanding leases die with their next heartbeat.
            final = "cancelling"
        telemetry.event("service.job.cancelled", job=job.uid)
        return {"job": job.uid, "state": final, "cancelled": True}

    def _rebuild_result(self, job: Job) -> SweepResult:
        """Reconstruct a terminal job's result from its checkpoint.

        The in-memory result dies with the process that ran the job; the
        checkpoint carries every settled cell's full journal, so a result
        served after a restart is payload-identical where it matters
        (outcomes and failures) and zeroes the run-shape fields
        (wall time, worker count) that describe a run this process never
        performed.
        """
        status = load_checkpoint(job.directory / CHECKPOINT_FILENAME)
        order = {task.uid: i for i, task in enumerate(job.spec.build_tasks())}
        outcomes = [status.outcomes[u] for u in
                    sorted(status.outcomes, key=lambda u: order.get(u, len(order)))]
        failures = [status.failures[u] for u in
                    sorted(status.failures, key=lambda u: order.get(u, len(order)))]
        return SweepResult(
            outcomes=outcomes,
            workers=0,
            cache_dir=str(job.directory),
            failures=failures,
            schedule="service",
            reused=len(outcomes),
        )

    def _job_summary(self, job: Job) -> dict:
        summary = job.as_summary()
        board = self._running_boards().get(job.uid)
        if board is not None:
            counts = board.counts()
            # A resumed board only covers the unsettled cells; fold the
            # checkpointed ones back in so the counts describe the grid.
            reused = job.total_cells - counts["cells"]
            summary["counts"] = {
                "cells": job.total_cells,
                "pending": counts["pending"],
                "leased": counts["leased"],
                "settled": counts["settled"] + reused,
                "failed": counts["failed"],
                "workers": counts["workers"],
            }
        else:
            completed, failed, _corrupt = scan_checkpoint(
                job.directory / CHECKPOINT_FILENAME)
            summary["counts"] = {
                "cells": job.total_cells,
                "pending": max(job.total_cells - completed - failed, 0),
                "leased": 0,
                "settled": completed + failed,
                "failed": failed,
                "workers": 0,
            }
        return summary

    # ------------------------------------------------------------- dashboards
    def status(self) -> dict:
        states: dict[str, int] = {}
        for job in self.queue.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        aggregate = {"cells": 0, "pending": 0, "leased": 0, "settled": 0,
                     "failed": 0}
        for job in self.queue.jobs():
            counts = self._job_summary(job)["counts"]
            for key in aggregate:
                aggregate[key] += counts[key]
        with self._lock:
            workers = len(self._workers)
        return {
            "version": PROTOCOL_VERSION,
            "service": True,
            "jobs": states,
            "workers": workers,
            "done": all(job.terminal for job in self.queue.jobs()),
            **aggregate,
        }

    def metrics(self) -> dict:
        """`/v1/metrics`: aggregate + per-job counts, shaped like the one-shot
        coordinator's reply so ``shard status`` renders both, plus a
        ``jobs`` section the CLI turns into per-job blocks."""
        boards = self._running_boards()
        with self._lock:
            totals = dict(self._lease_totals)
        for board in boards.values():
            for key, value in board.metrics_counts().items():
                totals[key] = totals.get(key, 0) + value
        now = time.monotonic()
        with self._lock:
            workers = [
                {
                    "worker_id": worker_id,
                    "name": info["name"],
                    "leased": info.get("leased", 0),
                    "completed": info.get("completed", 0),
                    "errors": info.get("errors", 0),
                    "busy_s": round(info.get("busy_s", 0.0), 3),
                    "last_seen_s": round(max(now - info["last_seen"], 0.0), 3),
                }
                for worker_id, info in sorted(self._workers.items())
            ]
        summaries = [self._job_summary(job) for job in self.queue.jobs()]
        aggregate = {"cells": 0, "pending": 0, "leased": 0, "settled": 0,
                     "failed": 0}
        for summary in summaries:
            for key in aggregate:
                aggregate[key] += summary["counts"][key]
        aggregate["workers"] = len(workers)
        aggregate["done"] = all(s["state"] in ("done", "failed", "cancelled")
                                for s in summaries) if summaries else True
        snap = telemetry.snapshot()
        return {
            "version": PROTOCOL_VERSION,
            "service": True,
            "counts": aggregate,
            "lease_metrics": totals,
            "workers": workers,
            "jobs": summaries,
            "telemetry": snap.as_dict() if snap is not None else None,
        }
