"""Typed client for the job service's ``/v1/jobs`` routes.

A thin convenience layer over :func:`repro.shard.protocol.post_json` /
``get_json`` / ``delete_json``: same error contract (everything surfaces
as :class:`~repro.shard.protocol.ShardProtocolError`), same auth header,
no extra dependencies.  Used by the ``submit`` / ``jobs`` / ``job``
CLI commands and by the tests; third parties can script against it
directly.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.shard.protocol import (
    ShardProtocolError,
    delete_json,
    get_json,
    post_json,
)
from repro.sweep.spec import SweepSpec

__all__ = ["ServiceClient"]


class ServiceClient:
    """One service coordinator endpoint, optionally authenticated."""

    def __init__(
        self,
        base_url: str,
        *,
        token: Optional[str] = None,
        timeout_s: float = 10.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token or None
        self.timeout_s = timeout_s

    # --------------------------------------------------------------- plumbing
    def _get(self, path: str) -> dict:
        return get_json(self.base_url, path, timeout_s=self.timeout_s,
                        token=self.token)

    def _post(self, path: str, payload: dict) -> dict:
        return post_json(self.base_url, path, payload,
                         timeout_s=self.timeout_s, token=self.token)

    def _delete(self, path: str) -> dict:
        return delete_json(self.base_url, path, timeout_s=self.timeout_s,
                           token=self.token)

    # ------------------------------------------------------------------ jobs
    def submit(self, spec: SweepSpec, name: Optional[str] = None) -> dict:
        """Submit one sweep job; returns ``{"job", "name", "state", "cells"}``."""
        payload: dict = {"spec": spec.as_dict()}
        if name:
            payload["name"] = name
        return self._post("/v1/jobs", payload)

    def jobs(self) -> list[dict]:
        """All known jobs, each as the coordinator's summary dict."""
        return list(self._get("/v1/jobs").get("jobs", []))

    def status(self, uid: str) -> dict:
        """One job's summary plus per-cell detail and failure records."""
        return self._get(f"/v1/jobs/{uid}")

    def result(self, uid: str) -> dict:
        """A terminal job's result: ``{"job", "name", "state", "sweep"}``.

        The ``sweep`` payload is ``SweepResult.as_dict()`` — dump it to a
        file and ``SweepResult.load`` / ``repro-codesign compare`` read it
        like any local run's result.
        """
        return self._get(f"/v1/jobs/{uid}/result")

    def cancel(self, uid: str) -> dict:
        return self._delete(f"/v1/jobs/{uid}")

    def service_status(self) -> dict:
        return self._get("/v1/status")

    def metrics(self) -> dict:
        return self._get("/v1/metrics")

    # ------------------------------------------------------------------ wait
    def wait(
        self,
        uid: str,
        *,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.5,
        on_progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Block until ``uid`` reaches a terminal state; returns its summary.

        ``on_progress`` (if given) receives every polled summary — the CLI
        uses it to stream settled/total counts.  Raises
        :class:`ShardProtocolError` on timeout, with the last observed
        state in the message.
        """
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        last_state = "unknown"
        while True:
            summary = self.status(uid)
            last_state = str(summary.get("state", "unknown"))
            if on_progress is not None:
                on_progress(summary)
            if last_state in ("done", "failed", "cancelled"):
                return summary
            if deadline is not None and time.monotonic() > deadline:
                raise ShardProtocolError(
                    f"timed out waiting for job '{uid}' (still {last_state} "
                    f"after {timeout_s:g}s)"
                )
            time.sleep(poll_s)
