"""Job queue of the co-design service: admission, state, durable journal.

A **job** is one named sweep (grid spec + runner knobs, carried as a
:class:`repro.sweep.SweepSpec`) moving through the state machine::

    queued → preparing → running → done | failed | cancelled

Each job owns ``<root>/jobs/<uid>/``: the spec as ``job.json`` plus the
standard sweep sidecars (``_checkpoint.jsonl``, ``_timings.json``,
``_telemetry.jsonl``) in their PR 4/6 formats — ``repro-codesign sweep
--resume``, ``compare`` and ``telemetry report`` work on a job directory
exactly as on any local sweep's cache dir.

Durability follows the checkpoint contract: every queue transition is one
fsynced JSON line in ``<root>/_service.jsonl``, and startup replays that
journal tolerating a torn tail.  A job that was ``preparing``/``running``
when the coordinator died is requeued and — because the per-job
checkpoint already holds its settled cells — resumes instead of
restarting, keeping the final journals byte-identical to an uninterrupted
run.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import threading
import time
from typing import Callable, Optional

from repro.sweep.spec import SweepSpec
from repro.utils.logging import get_logger
from repro.utils.serialization import dump_json

logger = get_logger(__name__)

__all__ = [
    "SERVICE_LOG_FILENAME", "SERVICE_LOG_VERSION", "JOB_SPEC_FILENAME",
    "JOBS_DIRNAME", "JOB_STATES", "TERMINAL_STATES", "Job", "JobQueue",
    "load_service_log",
]

#: Queue journal; the underscore prefix keeps it out of cache-shard scans.
SERVICE_LOG_FILENAME = "_service.jsonl"
SERVICE_LOG_VERSION = 1

#: Per-job spec file inside the job directory.
JOB_SPEC_FILENAME = "job.json"

#: Directory under the service root holding one subdirectory per job.
JOBS_DIRNAME = "jobs"

JOB_STATES = ("queued", "preparing", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_UID_SEQ_RE = re.compile(r"^j(\d+)")


def _sanitize_name(name: str) -> str:
    """Job-name slug safe in a uid, a path and a lease-id prefix."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-")[:48]


class Job:
    """Runtime state of one submitted sweep job."""

    def __init__(
        self,
        uid: str,
        name: str,
        spec: SweepSpec,
        directory: pathlib.Path,
        created_ts: float,
        state: str = "queued",
    ) -> None:
        self.uid = uid
        self.name = name
        self.spec = spec
        self.directory = directory
        self.created_ts = created_ts
        self.state = state
        self.state_ts = created_ts
        self.error: Optional[str] = None
        #: Set to abandon the job: the transport detaches its board (no new
        #: leases, no requeue) and the driver records ``cancelled``.
        self.cancel = threading.Event()
        #: In-memory result while this process ran the job to completion;
        #: after a restart the checkpoint is the source of truth instead.
        self.result = None
        self.total_cells = len(spec.build_tasks())
        #: True when this queue instance re-admitted the job after a crash.
        self.recovered = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_summary(self) -> dict:
        return {
            "job": self.uid,
            "name": self.name,
            "state": self.state,
            "cells": self.total_cells,
            "error": self.error,
            "created_ts": round(self.created_ts, 3),
            "state_ts": round(self.state_ts, 3),
            "recovered": self.recovered,
        }


def load_service_log(path) -> tuple[list[dict], int]:
    """Replay a ``_service.jsonl``; returns ``(records, corrupt_lines)``.

    A SIGKILL mid-append leaves at most one torn final line; any line that
    fails to parse (or is not a JSON object) is counted and skipped, never
    fatal — the journal idiom shared with ``_checkpoint.jsonl``.
    """
    path = pathlib.Path(path)
    records: list[dict] = []
    corrupt = 0
    if not path.exists():
        return records, corrupt
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:  # pragma: no cover - unreadable journal
        return records, corrupt
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if not isinstance(record, dict) or "kind" not in record:
            corrupt += 1
            continue
        records.append(record)
    return records, corrupt


class _ServiceLog:
    """Append-only fsynced writer for the queue journal."""

    def __init__(self, path: pathlib.Path, clock: Callable[[], float]) -> None:
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()
        fresh = not path.exists()
        if fresh:
            self.append({"kind": "header", "version": SERVICE_LOG_VERSION})

    def append(self, record: dict) -> None:
        record = dict(record)
        record["ts"] = round(self._clock(), 3)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            # repro: disable=lock-discipline -- this lock exists to order appends; it is leaf-level and nothing re-enters under it
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                # repro: disable=lock-discipline -- per-record fsync IS the journal durability contract (same idiom as the checkpoint writer)
                os.fsync(handle.fileno())


class JobQueue:
    """Persistent multi-job admission queue over a service root directory.

    Owns uid assignment (``j0001-<name>`` — monotonic, so the submit order
    is recoverable from the uids alone), the per-job directories and the
    durable state journal.  Thread-safe: HTTP handler threads submit and
    cancel while job driver threads transition states.
    """

    def __init__(self, root, *, clock: Callable[[], float] = time.time) -> None:
        self.root = pathlib.Path(root)
        self.jobs_dir = self.root / JOBS_DIRNAME
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.root / SERVICE_LOG_FILENAME
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self.corrupt_lines = 0
        self._replay()
        self._log = _ServiceLog(self.path, clock)
        self._requeue_unfinished()

    # ------------------------------------------------------------- admission
    def submit(self, spec: SweepSpec, name: Optional[str] = None) -> Job:
        """Admit one validated spec; returns the queued :class:`Job`."""
        slug = _sanitize_name(name or "") if name else ""
        with self._lock:
            self._seq += 1
            uid = f"j{self._seq:04d}" + (f"-{slug}" if slug else "")
        directory = self.jobs_dir / uid
        directory.mkdir(parents=True, exist_ok=True)
        now = self._clock()
        job = Job(uid, name or uid, spec, directory, now)
        dump_json({"job": uid, "name": job.name, "spec": spec.as_dict()},
                  directory / JOB_SPEC_FILENAME)
        with self._lock:
            self._jobs[uid] = job
        self._log.append({
            "kind": "submitted", "job": uid, "name": job.name,
            "spec": spec.as_dict(),
        })
        logger.info("service: job %s (%s) submitted — %d cell(s)",
                    uid, job.name, job.total_cells)
        return job

    def get(self, uid: str) -> Job:
        with self._lock:
            job = self._jobs.get(uid)
        if job is None:
            raise KeyError(uid)
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[uid] for uid in sorted(self._jobs)]

    # ----------------------------------------------------------- transitions
    def set_state(self, job: Job, state: str, *, error: Optional[str] = None) -> None:
        """Transition ``job`` and journal the transition durably."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state '{state}'")
        now = self._clock()
        with self._lock:
            job.state = state
            job.state_ts = now
            job.error = error
        record = {"kind": "state", "job": job.uid, "state": state}
        if error is not None:
            record["error"] = error
        self._log.append(record)
        logger.info("service: job %s → %s%s", job.uid, state,
                    f" ({error})" if error else "")

    # --------------------------------------------------------------- replay
    def _replay(self) -> None:
        """Rebuild the queue from the journal (startup path, single-threaded)."""
        records, self.corrupt_lines = load_service_log(self.path)
        for record in records:
            kind = record.get("kind")
            if kind == "submitted":
                uid = record.get("job")
                if not isinstance(uid, str) or not uid:
                    continue
                match = _UID_SEQ_RE.match(uid)
                if match:
                    self._seq = max(self._seq, int(match.group(1)))
                ts = record.get("ts")
                created = float(ts) if isinstance(ts, (int, float)) else 0.0
                try:
                    spec = SweepSpec.from_payload(record.get("spec") or {})
                except ValueError as exc:
                    logger.warning("service: job %s has an unreadable spec "
                                   "after restart: %s", uid, exc)
                    # Admit it as failed so the uid stays visible (and the
                    # sequence monotonic) instead of silently vanishing.
                    job = Job(uid, str(record.get("name") or uid), SweepSpec(),
                              self.jobs_dir / uid, created, state="failed")
                    job.error = f"unreadable spec after restart: {exc}"
                    self._jobs[uid] = job
                    continue
                job = Job(uid, str(record.get("name") or uid), spec,
                          self.jobs_dir / uid, created)
                self._jobs[uid] = job
            elif kind == "state":
                job = self._jobs.get(record.get("job"))
                state = record.get("state")
                if job is None or state not in JOB_STATES:
                    continue
                job.state = state
                ts = record.get("ts")
                if isinstance(ts, (int, float)):
                    job.state_ts = float(ts)
                job.error = record.get("error") if isinstance(
                    record.get("error"), str) else None

    def _requeue_unfinished(self) -> None:
        """Re-admit jobs the previous process never finished (crash recovery).

        Runs during ``__init__``, so every known job came from the journal:
        any non-terminal one was abandoned by a dead coordinator.  Jobs
        caught mid-flight (``preparing``/``running``) go back to ``queued``;
        their checkpoints make the re-run a resume, not a restart.
        """
        for job in self.jobs():
            if job.terminal:
                continue
            job.recovered = True
            if job.state != "queued":
                logger.info("service: job %s was %s at shutdown; requeueing "
                            "(resumes from its checkpoint)", job.uid, job.state)
                self.set_state(job, "queued")
                self._log.append({"kind": "recovered", "job": job.uid})
