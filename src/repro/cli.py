"""Command-line interface for the co-design flow and the experiments.

Examples
--------
Run the full co-design flow on PYNQ-Z1::

    repro-codesign codesign --device pynq-z1 --fps 10 15 20

Run the DNN search step with a pluggable exploration strategy, parallel
evaluation workers and an archivable journal::

    repro-codesign search --strategy evolutionary --workers 4 --journal out.json

Fan a device x strategy x latency-target sweep out across worker processes
with a persistent evaluation cache and a comparison report::

    repro-codesign sweep --devices pynq-z1,ultra96 --strategies scd,random \
        --workers 4 --cache-dir .sweep-cache --report sweep.json \
        --timeout-s 300 --retries 1

Resume a sweep that died mid-run (only the failed / missing grid cells
re-execute; checkpointed outcomes are reused verbatim)::

    repro-codesign sweep --devices pynq-z1,ultra96 --strategies scd,random \
        --workers 4 --cache-dir .sweep-cache --resume

Distribute a sweep across machines (coordinator owns the grid and the
checkpoint; workers connect from anywhere)::

    repro-codesign shard coordinator --bind 0.0.0.0:8765 \
        --devices pynq-z1,ultra96 --strategies scd,random \
        --cache-dir .sweep-cache --report sweep.json
    repro-codesign shard worker --connect coordinator-host:8765 --workers 4

Diff two saved sweep runs (result/report JSON or _checkpoint.jsonl)::

    repro-codesign compare --diff old-sweep.json new-sweep.json

Inspect or garbage-collect a persistent sweep cache::

    repro-codesign cache stats --cache-dir .sweep-cache
    repro-codesign cache gc --cache-dir .sweep-cache --max-age-days 30 --max-size-mb 64

Regenerate a specific paper artefact::

    repro-codesign experiment table2
    repro-codesign experiment fig4

Generate the accelerator C code for a reference design::

    repro-codesign codegen --design DNN1 --output ./generated
"""

from __future__ import annotations

import argparse
import sys

import repro.telemetry as telemetry
from repro.backend import resolve_targets
from repro.core import CoDesignFlow, CoDesignInputs, LatencyTarget
from repro.core.auto_hls import AutoHLS
from repro.detection.task import DAC_SDC_TASK
from repro.hw.device import get_device, list_devices
from repro.search import SearchSession, available_strategies
from repro.utils.logging import configure_logging


# ------------------------------------------------------ argument validation
# argparse ``type=`` callables: a bad value dies as a clear two-line usage
# error at the parser, instead of a traceback deep inside the runner (or,
# worse, after worker processes already spawned).
def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got '{text}'") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got '{text}'") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected an integer >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got '{text}'") from None
    if not value > 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _non_negative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got '{text}'") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a number >= 0, got {value}")
    return value


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    """Search-budget arguments shared by codesign / search / sweep."""
    parser.add_argument("--fps", type=_positive_float, nargs="+",
                        default=[10.0, 15.0, 20.0],
                        help="latency targets in frames per second")
    parser.add_argument("--tolerance-ms", type=_positive_float, default=8.0,
                        help="latency tolerance band")
    parser.add_argument("--top-bundles", type=_positive_int, default=5,
                        help="number of bundles to select")
    parser.add_argument("--candidates", type=_positive_int, default=2,
                        help="candidates per bundle per target")
    parser.add_argument("--iterations", type=_positive_int, default=120,
                        help="search iteration budget")
    parser.add_argument("--seed", type=int, default=2019, help="search seed")


def _target_spec(text: str) -> str:
    """Validate a ``--devices`` target-spec list at the parser.

    Each comma-separated token is ``[backend:]name`` (bare names are FPGA
    devices, ``all`` expands to a backend's whole catalogue).  Unknown
    backend prefixes and unknown per-backend device names die as usage
    errors listing the registered backends and their devices, before any
    worker process spawns.
    """
    try:
        resolve_targets(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _add_grid_args(parser: argparse.ArgumentParser) -> None:
    """Sweep-grid axes shared by ``sweep`` and ``shard coordinator``."""
    parser.add_argument("--devices", default="pynq-z1", type=_target_spec,
                        help="comma-separated target specs '[backend:]name', e.g. "
                             "'fpga:pynq-z1,gpu:jetson-tx2'; bare names are FPGA "
                             f"devices ('all' = {', '.join(list_devices())})")
    parser.add_argument("--strategies", default="scd",
                        help=f"comma-separated strategies ({', '.join(available_strategies())})")
    parser.add_argument("--clocks", type=_positive_float, nargs="+", default=None,
                        help="accelerator clock axis in MHz (default: device default clock)")
    parser.add_argument("--utilizations", type=_positive_float, nargs="+", default=[1.0],
                        help="resource-utilization-limit axis, each in (0, 1]")


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Timeout / retry knobs shared by ``sweep`` and ``shard coordinator``."""
    parser.add_argument("--timeout-s", type=_positive_float, default=None,
                        help="per-cell wall-clock timeout floor; scaled up per cell "
                             "from recorded cost hints")
    parser.add_argument("--timeout-scale", type=_positive_float, default=3.0,
                        help="multiplier over a cell's recorded duration when computing "
                             "its effective timeout (--timeout-s is the floor)")
    parser.add_argument("--retries", type=_non_negative_int, default=1,
                        help="retries per failed/timed-out cell before recording a failure")
    parser.add_argument("--retry-backoff-s", type=_non_negative_float, default=0.1,
                        help="base of the deterministic exponential retry backoff "
                             "(0 disables backoff)")


def _add_token_arg(parser: argparse.ArgumentParser) -> None:
    """Shared-secret flag accepted by every networked shard/service command."""
    parser.add_argument("--token", default=None, metavar="SECRET",
                        help="shared secret sent as the X-Repro-Token header "
                             "(default: $REPRO_SERVICE_TOKEN; '' disables auth)")


def _add_persistence_args(parser: argparse.ArgumentParser) -> None:
    """Cache / checkpoint / report args shared by ``sweep`` and the coordinator."""
    parser.add_argument("--resume", action="store_true",
                        help="resume from <cache-dir>/_checkpoint.jsonl: reuse completed "
                             "cells, re-run only failed/missing ones")
    parser.add_argument("--from", dest="resume_from", default=None, metavar="PATH",
                        help="explicit resume source: a _checkpoint.jsonl or a saved "
                             "sweep result/report JSON (implies --resume)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent evaluation-cache directory (JSON-lines shards)")
    parser.add_argument("--report", default=None,
                        help="write the comparison report JSON to this path")


def _common_flags() -> argparse.ArgumentParser:
    """Logging / telemetry flags accepted by every subcommand.

    The flags use ``default=argparse.SUPPRESS`` so a subparser never
    overwrites a value given before the subcommand
    (``repro-codesign -v sweep`` and ``repro-codesign sweep -v`` both work);
    ``main`` reads them with ``getattr`` fallbacks.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("logging / telemetry")
    group.add_argument("-v", "--verbose", action="store_true",
                       default=argparse.SUPPRESS,
                       help="enable INFO logging (shortcut for --log-level info)")
    group.add_argument("--log-level", default=argparse.SUPPRESS,
                       choices=["debug", "info", "warning", "error"],
                       help="console log level for the repro logger tree")
    group.add_argument("--telemetry", action="store_true",
                       default=argparse.SUPPRESS,
                       help="enable metrics/tracing; sweeps write a "
                            "_telemetry.jsonl sidecar next to the checkpoint")
    return common


def _build_parser() -> argparse.ArgumentParser:
    common = _common_flags()
    parser = argparse.ArgumentParser(
        prog="repro-codesign",
        description="FPGA/DNN co-design (DAC 2019) reproduction",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    codesign = sub.add_parser("codesign", help="run the full co-design flow",
                              parents=[common])
    codesign.add_argument("--device", default="pynq-z1", help=f"target device ({', '.join(list_devices())})")
    _add_budget_args(codesign)

    search = sub.add_parser("search", help="run the DNN search with a pluggable strategy",
                            parents=[common])
    search.add_argument("--strategy", default="scd", choices=available_strategies(),
                        help="exploration strategy")
    search.add_argument("--workers", type=_positive_int, default=1,
                        help="parallel evaluation worker threads (1 = serial, reproducible)")
    search.add_argument("--journal", default=None,
                        help="write the SearchSession journal JSON to this path")
    search.add_argument("--device", default="pynq-z1", help=f"target device ({', '.join(list_devices())})")
    _add_budget_args(search)

    sweep = sub.add_parser(
        "sweep", help="fan a device x strategy x target grid across worker processes",
        parents=[common],
    )
    _add_grid_args(sweep)
    sweep.add_argument("--workers", type=_positive_int, default=1,
                       help="worker processes (1 = in-process serial)")
    sweep.add_argument("--schedule", choices=["steal", "chunked"], default="steal",
                       help="cell dispatch: cost-ordered work-stealing or static chunks")
    _add_resilience_args(sweep)
    sweep.add_argument("--per-cell-prep", action="store_true",
                       help="re-run model fit + bundle selection in every cell "
                            "(default: prepared once per device and shared)")
    _add_persistence_args(sweep)
    _add_budget_args(sweep)

    shard = sub.add_parser(
        "shard", help="distribute one sweep grid across machines (lease-based)"
    )
    shard_sub = shard.add_subparsers(dest="role", required=True)

    coordinator = shard_sub.add_parser(
        "coordinator",
        help="own the grid: lease cells to workers, merge + checkpoint results",
        parents=[common],
    )
    coordinator.add_argument("--bind", default="127.0.0.1:8765", metavar="HOST:PORT",
                             help="address to listen on (0.0.0.0:PORT for all interfaces)")
    coordinator.add_argument("--lease-ttl-s", type=_positive_float, default=30.0,
                             help="requeue a cell when its worker misses heartbeats "
                                  "for this long")
    coordinator.add_argument("--heartbeat-s", type=_positive_float, default=5.0,
                             help="heartbeat period suggested to workers "
                                  "(must be below --lease-ttl-s)")
    _add_token_arg(coordinator)
    _add_grid_args(coordinator)
    _add_resilience_args(coordinator)
    _add_persistence_args(coordinator)
    _add_budget_args(coordinator)

    worker = shard_sub.add_parser(
        "worker", help="execute leased cells for a coordinator and stream results back",
        parents=[common],
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address (http:// is implied)")
    worker.add_argument("--workers", type=_positive_int, default=1,
                        help="concurrent cells on this machine "
                             "(1 = serial in-process, N = local process pool)")
    worker.add_argument("--cache-dir", default=None,
                        help="this machine's persistent evaluation-cache directory")
    worker.add_argument("--name", default=None,
                        help="worker display name (default: hostname-pid)")
    worker.add_argument("--idle-timeout-s", type=_positive_float, default=None,
                        help="against a multi-job service: exit 0 after this long "
                             "with no lease granted (default: poll forever)")
    _add_token_arg(worker)

    status = shard_sub.add_parser(
        "status",
        help="query a live coordinator's /v1/metrics (lease counters, workers)",
        parents=[common],
    )
    status.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address (http:// is implied)")
    status.add_argument("--json", action="store_true",
                        help="print the raw /v1/metrics JSON payload")
    status.add_argument("--watch", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="refresh the status display every SECONDS until "
                             "interrupted (or the coordinator reports done)")

    serve = sub.add_parser(
        "serve",
        help="run a persistent multi-tenant job service (submit sweeps with "
             "'submit'; workers connect with 'shard worker')",
        parents=[common],
    )
    serve.add_argument("--root", required=True, metavar="DIR",
                       help="service root directory (journal, per-job dirs, "
                            "shared estimator cache)")
    serve.add_argument("--bind", default="127.0.0.1:8765", metavar="HOST:PORT",
                       help="address to listen on (0.0.0.0:PORT for all interfaces)")
    serve.add_argument("--lease-ttl-s", type=_positive_float, default=30.0,
                       help="requeue a cell when its worker misses heartbeats "
                            "for this long")
    serve.add_argument("--heartbeat-s", type=_positive_float, default=5.0,
                       help="heartbeat period suggested to workers "
                            "(must be below --lease-ttl-s)")
    serve.add_argument("--max-active", type=_positive_int, default=4,
                       help="jobs allowed in preparing/running at once "
                            "(the rest wait queued)")
    _add_token_arg(serve)

    submit = sub.add_parser(
        "submit",
        help="submit one sweep job to a running service (same grid/budget "
             "flags as 'sweep')",
        parents=[common],
    )
    submit.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="service coordinator address (http:// is implied)")
    submit.add_argument("--name", default=None,
                        help="job display name (slugged into the job uid)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job settles, streaming progress")
    submit.add_argument("--wait-timeout-s", type=_positive_float, default=None,
                        help="give up --wait after this long (job keeps running)")
    _add_token_arg(submit)
    _add_grid_args(submit)
    _add_resilience_args(submit)
    _add_budget_args(submit)

    jobs_cmd = sub.add_parser(
        "jobs", help="list a service's jobs and their progress",
        parents=[common],
    )
    jobs_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="service coordinator address (http:// is implied)")
    jobs_cmd.add_argument("--json", action="store_true",
                          help="print the raw job summaries as JSON")
    _add_token_arg(jobs_cmd)

    job_cmd = sub.add_parser(
        "job", help="inspect, cancel or fetch the result of one service job",
        parents=[common],
    )
    job_sub = job_cmd.add_subparsers(dest="action", required=True)
    for action, blurb in (("status", "one job's state and per-cell progress"),
                          ("cancel", "cancel a queued or running job"),
                          ("result", "fetch a settled job's sweep result")):
        action_parser = job_sub.add_parser(action, help=blurb, parents=[common])
        action_parser.add_argument("uid", help="job uid (as printed by submit/jobs)")
        action_parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                                   help="service coordinator address "
                                        "(http:// is implied)")
        action_parser.add_argument("--json", action="store_true",
                                   help="print the raw JSON payload")
        _add_token_arg(action_parser)
        if action == "result":
            action_parser.add_argument("--output", default=None, metavar="PATH",
                                       help="write the result JSON here ("
                                            "readable by 'compare --diff')")

    telemetry_cmd = sub.add_parser(
        "telemetry", help="inspect the telemetry recorded by a sweep",
        parents=[common],
    )
    telemetry_sub = telemetry_cmd.add_subparsers(dest="action", required=True)
    tele_report = telemetry_sub.add_parser(
        "report",
        help="summarise a sweep's checkpoint + _telemetry.jsonl sidecar",
        parents=[common],
    )
    tele_report.add_argument("--cache-dir", required=True,
                             help="sweep cache directory (holds the checkpoint "
                                  "and telemetry sidecar)")
    tele_report.add_argument("--top", type=_positive_int, default=5,
                             help="how many slowest cells to list")
    tele_report.add_argument("--json", action="store_true",
                             help="print the report as JSON instead of text")

    compare_cmd = sub.add_parser(
        "compare", help="diff two saved sweep runs (results, reports or checkpoints)",
        parents=[common],
    )
    compare_cmd.add_argument("--diff", nargs=2, required=True, metavar=("A", "B"),
                             help="two sweep result/report JSONs or _checkpoint.jsonl files")
    compare_cmd.add_argument("--only-changed", action="store_true",
                             help="list only the cells that differ")
    compare_cmd.add_argument("--report", default=None,
                             help="write the diff as JSON to this path")

    cache = sub.add_parser(
        "cache", help="inspect or compact a persistent sweep evaluation-cache directory",
        parents=[common],
    )
    cache.add_argument("action", choices=["stats", "gc"],
                       help="stats: summarise the directory; gc: compact and evict")
    cache.add_argument("--cache-dir", required=True, help="cache directory to operate on")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="gc: evict entries older than this many days")
    cache.add_argument("--max-size-mb", type=float, default=None,
                       help="gc: evict oldest entries until the directory fits this budget")

    lint = sub.add_parser(
        "lint",
        help="run the repro.analysis invariant linter over the source tree",
        parents=[common],
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: the src/ tree, or the installed package)")
    lint.add_argument("--rule", action="append", dest="rules", default=None,
                      metavar="RULE",
                      help="run only this rule (repeatable); "
                           "see --list-rules for the registry")
    lint.add_argument("--json", action="store_true",
                      help="print the full report as JSON (findings, "
                           "suppressions, baseline state)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="grandfathered-findings file (default: the nearest "
                           ".repro-lint-baseline.json above the lint root)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file (report everything)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to grandfather the current "
                           "findings, then exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and the contracts "
                           "they encode")

    experiment = sub.add_parser("experiment", help="regenerate a paper artefact",
                                parents=[common])
    experiment.add_argument("name", choices=["fig4", "fig5", "fig6", "table2", "ablations"],
                            help="which table / figure to regenerate")

    codegen = sub.add_parser("codegen", help="generate accelerator C code for a reference design",
                             parents=[common])
    codegen.add_argument("--design", choices=["DNN1", "DNN2", "DNN3"], default="DNN1")
    codegen.add_argument("--device", default="pynq-z1")
    codegen.add_argument("--clock", type=float, default=100.0)
    codegen.add_argument("--output", default="./generated", help="output directory")

    bundles = sub.add_parser("bundles", help="list the default bundle catalogue",
                             parents=[common])
    del bundles
    return parser


def _build_flow(args: argparse.Namespace, **flow_kwargs) -> CoDesignFlow:
    """Construct the co-design flow shared by the codesign / search commands."""
    device = get_device(args.device)
    targets = tuple(
        LatencyTarget(fps=f, clock_mhz=device.default_clock_mhz, tolerance_ms=args.tolerance_ms)
        for f in args.fps
    )
    inputs = CoDesignInputs(task=DAC_SDC_TASK, device=device, latency_targets=targets)
    return CoDesignFlow(
        inputs,
        candidates_per_bundle=args.candidates,
        top_n_bundles=args.top_bundles,
        scd_iterations=args.iterations,
        rng=args.seed,
        **flow_kwargs,
    )


def _run_codesign(args: argparse.Namespace) -> int:
    flow = _build_flow(args)
    result = flow.run()
    print(result.summary())
    return 0


def _run_search(args: argparse.Namespace) -> int:
    from repro.core.auto_dnn import AutoDNN

    flow = _build_flow(args, search_strategy=args.strategy, search_workers=args.workers)
    session = SearchSession(
        name=f"search-{args.strategy}",
        metadata={
            "strategy": args.strategy,
            "seed": args.seed,
            "workers": args.workers,
            "device": args.device,
            "fps": list(args.fps),
            "tolerance_ms": args.tolerance_ms,
            "iterations": args.iterations,
        },
    )
    flow.step1_modeling()
    _, _, selected = flow.step2_bundle_selection()
    candidates = flow.step3_search(selected, session=session)
    best = AutoDNN.best_per_target(candidates, flow.inputs.latency_targets)

    print(f"Search strategy '{args.strategy}' on {flow.inputs.device.name} "
          f"({args.workers} worker{'s' if args.workers != 1 else ''})")
    print(f"  selected bundles  : {[b.bundle_id for b in selected]}")
    print(f"  explored DNNs     : {len(candidates)}")
    print(f"  {flow.auto_dnn.cache.stats().summary()}")
    for target, candidate in best.items():
        if candidate is None:
            print(f"  {target}: no candidate met the target")
        else:
            print(f"  {target}: {candidate.summary()}")
    print(session.summary())
    if args.journal:
        path = session.save(args.journal)
        print(f"Journal written to {path}")
    return 0


def _resolve_resume_source(args: argparse.Namespace):
    """Where a ``--resume`` run reads prior outcomes from (None = fresh)."""
    import pathlib

    from repro.sweep import CHECKPOINT_FILENAME

    if args.resume_from:
        return args.resume_from
    if not args.resume:
        return None
    if args.cache_dir is None:
        raise ValueError(
            "--resume needs --cache-dir (the checkpoint lives there) "
            "or an explicit --from <checkpoint|result.json>"
        )
    checkpoint = pathlib.Path(args.cache_dir) / CHECKPOINT_FILENAME
    if not checkpoint.exists():
        # First run of a resumable pipeline: nothing to resume yet.
        print(f"No checkpoint at {checkpoint}; starting a fresh sweep.")
        return None
    return str(checkpoint)


def _build_sweep_runner(args: argparse.Namespace, transport=None):
    """Grid + runner construction shared by ``sweep`` and ``shard coordinator``."""
    from repro.sweep import SweepRunner, build_grid

    tasks = build_grid(
        args.devices,
        args.strategies,
        args.fps,
        tolerance_ms=args.tolerance_ms,
        iterations=args.iterations,
        num_candidates=args.candidates,
        top_bundles=args.top_bundles,
        seed=args.seed,
        clocks_mhz=args.clocks,
        utilizations=args.utilizations,
    )
    return SweepRunner(
        tasks,
        workers=getattr(args, "workers", 1),
        cache_dir=args.cache_dir,
        schedule=getattr(args, "schedule", "steal"),
        timeout_s=args.timeout_s,
        timeout_scale=args.timeout_scale,
        retries=args.retries,
        retry_backoff_s=args.retry_backoff_s,
        share_preparation=not getattr(args, "per_cell_prep", False),
        resume_from=_resolve_resume_source(args),
        transport=transport,
    )


def _report_sweep_result(result, args: argparse.Namespace) -> int:
    """Print summary + comparison, write the report file, pick the exit code."""
    from repro.sweep import compare
    from repro.utils.serialization import dump_json

    comparison = compare(result) if result.outcomes else None
    print(result.summary())
    print()
    if comparison is not None:
        print(comparison.render())
    else:
        print("No surviving cells to compare.")
    if args.report:
        payload = {"sweep": result.as_dict()}
        if comparison is not None:
            payload["comparison"] = comparison.as_dict()
        path = dump_json(payload, args.report)
        print(f"Report written to {path}")
    return 0 if result.ok else 1


def _run_sweep(args: argparse.Namespace) -> int:
    runner = _build_sweep_runner(args)
    return _report_sweep_result(runner.run(), args)


def _run_shard(args: argparse.Namespace) -> int:
    if args.role == "coordinator":
        from repro.shard import CoordinatorTransport, parse_bind

        # Cross-field and bind-spec validation that argparse types cannot
        # express; fail as a usage error (exit 2), not a traceback.
        try:
            bind = parse_bind(args.bind)
        except ValueError as exc:
            print(f"repro-codesign shard coordinator: error: argument --bind: {exc}",
                  file=sys.stderr)
            return 2
        if args.heartbeat_s >= args.lease_ttl_s:
            print(
                "repro-codesign shard coordinator: error: argument --heartbeat-s: "
                f"must be below --lease-ttl-s ({args.heartbeat_s:g} >= "
                f"{args.lease_ttl_s:g})",
                file=sys.stderr,
            )
            return 2
        from repro.shard.protocol import resolve_token

        transport = CoordinatorTransport(
            bind=bind,
            lease_ttl_s=args.lease_ttl_s,
            heartbeat_s=args.heartbeat_s,
            token=resolve_token(args.token),
            on_bound=lambda coordinator: print(
                f"Coordinator listening on {coordinator.url} "
                f"(lease TTL {args.lease_ttl_s:g}s); waiting for workers...",
                flush=True,
            ),
        )
        runner = _build_sweep_runner(args, transport=transport)
        result = runner.run()
        counts = transport.final_counts
        if counts:
            print(
                "Shard leases: granted={granted} completed={completed} "
                "requeued={requeued} expired={expired} revoked={revoked} "
                "duplicates={duplicates} failed={failed}".format(**counts)
            )
            for entry in transport.final_workers or []:
                print(
                    f"  worker {entry['worker_id']} ({entry['name']}): "
                    f"leased={entry['leased']} completed={entry['completed']} "
                    f"errors={entry['errors']} busy={entry['busy_s']:.1f}s"
                )
        return _report_sweep_result(result, args)
    if args.role == "status":
        return _run_shard_status(args)
    if args.role == "worker":
        from repro.shard import ShardWorker
        from repro.shard.protocol import resolve_token

        worker = ShardWorker(
            args.connect,
            workers=args.workers,
            cache_dir=args.cache_dir,
            name=args.name,
            token=resolve_token(args.token),
            idle_timeout_s=args.idle_timeout_s,
        )
        code = worker.run()
        print(f"Worker {worker.name}: executed {worker.executed} cell(s), "
              f"{worker.reported_errors} error(s) reported, exit {code}")
        return code
    raise ValueError(f"Unknown shard role {args.role}")  # pragma: no cover


def _service_base(connect: str) -> str:
    base = connect.rstrip("/")
    if not base.startswith(("http://", "https://")):
        base = "http://" + base
    return base


def _render_shard_metrics(base: str, payload: dict) -> None:
    counts = payload.get("counts") or {}
    lease = payload.get("lease_metrics") or {}
    kind = "Service" if payload.get("service") else "Coordinator"
    print(f"{kind} {base} (protocol v{payload.get('version', '?')})")
    print(
        "  cells: {cells} total, {pending} pending, {leased} leased, "
        "{settled} settled, {failed} failed".format(
            cells=counts.get("cells", 0), pending=counts.get("pending", 0),
            leased=counts.get("leased", 0), settled=counts.get("settled", 0),
            failed=counts.get("failed", 0),
        )
    )
    print(
        "  leases: granted={granted} completed={completed} requeued={requeued} "
        "expired={expired} revoked={revoked} duplicates={duplicates} "
        "failed={failed} heartbeats={heartbeats}".format(
            **{key: lease.get(key, 0) for key in (
                "granted", "completed", "requeued", "expired", "revoked",
                "duplicates", "failed", "heartbeats")}
        )
    )
    for entry in payload.get("workers") or []:
        print(
            f"  worker {entry.get('worker_id')} ({entry.get('name')}): "
            f"leased={entry.get('leased', 0)} completed={entry.get('completed', 0)} "
            f"errors={entry.get('errors', 0)} busy={entry.get('busy_s', 0.0):.1f}s "
            f"last seen {entry.get('last_seen_s', 0.0):.1f}s ago"
        )
    # A service coordinator reports per-job sections after the aggregates.
    for job in payload.get("jobs") or []:
        job_counts = job.get("counts") or {}
        line = (
            f"  job {job.get('job')} [{job.get('state')}]: "
            f"{job_counts.get('settled', 0)}/{job_counts.get('cells', 0)} settled, "
            f"{job_counts.get('leased', 0)} leased, "
            f"{job_counts.get('failed', 0)} failed"
        )
        if job.get("recovered"):
            line += " (recovered)"
        if job.get("error"):
            line += f" — {job['error']}"
        print(line)
    if payload.get("telemetry") is None:
        print("  telemetry: disabled on the coordinator")


def _run_shard_status(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.shard.protocol import ShardProtocolError, get_json

    base = _service_base(args.connect)
    while True:
        try:
            payload = get_json(base, "/v1/metrics")
        except ShardProtocolError as exc:
            print(f"repro-codesign shard status: cannot reach coordinator: {exc}",
                  file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            _render_shard_metrics(base, payload)
        counts = payload.get("counts") or {}
        if args.watch is None or counts.get("done"):
            return 0
        try:
            _time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        print()


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceCoordinator
    from repro.shard.protocol import parse_bind, resolve_token

    try:
        bind = parse_bind(args.bind)
    except ValueError as exc:
        print(f"repro-codesign serve: error: argument --bind: {exc}",
              file=sys.stderr)
        return 2
    if args.heartbeat_s >= args.lease_ttl_s:
        print(
            "repro-codesign serve: error: argument --heartbeat-s: must be "
            f"below --lease-ttl-s ({args.heartbeat_s:g} >= {args.lease_ttl_s:g})",
            file=sys.stderr,
        )
        return 2
    service = ServiceCoordinator(
        args.root,
        bind=bind,
        token=resolve_token(args.token),
        lease_ttl_s=args.lease_ttl_s,
        heartbeat_s=args.heartbeat_s,
        max_active=args.max_active,
    )
    service.start()
    queued = sum(1 for job in service.queue.jobs() if not job.terminal)
    print(f"Service listening on {service.url} (root {service.root}, "
          f"{queued} unfinished job(s) resumed); Ctrl-C to stop.", flush=True)
    try:
        while True:
            import time as _time

            _time.sleep(0.5)
    except KeyboardInterrupt:
        print("Stopping (unfinished jobs resume on the next serve)...")
    finally:
        service.stop()
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient
    from repro.shard.protocol import ShardProtocolError, resolve_token
    from repro.sweep.spec import SweepSpec

    client = ServiceClient(_service_base(args.connect),
                           token=resolve_token(args.token))
    spec = SweepSpec.from_args(args)
    try:
        reply = client.submit(spec, name=args.name)
    except ShardProtocolError as exc:
        print(f"repro-codesign submit: {exc}", file=sys.stderr)
        return 1
    uid = reply.get("job")
    print(f"Submitted job {uid} ({reply.get('cells', '?')} cell(s), "
          f"state {reply.get('state')})")
    if not args.wait:
        return 0
    last = {"settled": -1}

    def _progress(summary: dict) -> None:
        counts = summary.get("counts") or {}
        settled = counts.get("settled", 0)
        if settled != last["settled"]:
            last["settled"] = settled
            print(f"  {uid}: {settled}/{counts.get('cells', '?')} settled "
                  f"[{summary.get('state')}]", flush=True)

    try:
        summary = client.wait(uid, timeout_s=args.wait_timeout_s,
                              on_progress=_progress)
    except ShardProtocolError as exc:
        print(f"repro-codesign submit: {exc}", file=sys.stderr)
        return 1
    state = summary.get("state")
    print(f"Job {uid} settled: {state}"
          + (f" ({summary.get('error')})" if summary.get("error") else ""))
    return 0 if state == "done" else 1


def _run_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient
    from repro.shard.protocol import ShardProtocolError, resolve_token
    from repro.utils.tables import render_table

    client = ServiceClient(_service_base(args.connect),
                           token=resolve_token(args.token))
    try:
        jobs = client.jobs()
    except ShardProtocolError as exc:
        print(f"repro-codesign jobs: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    rows = []
    for job in jobs:
        counts = job.get("counts") or {}
        rows.append([
            job.get("job"), job.get("name"), job.get("state"),
            f"{counts.get('settled', 0)}/{counts.get('cells', 0)}",
            counts.get("failed", 0),
            "yes" if job.get("recovered") else "",
        ])
    print(render_table(["job", "name", "state", "settled", "failed", "recovered"],
                       rows, title=f"Jobs on {_service_base(args.connect)}"))
    return 0


def _run_job(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient
    from repro.shard.protocol import ShardProtocolError, resolve_token

    client = ServiceClient(_service_base(args.connect),
                           token=resolve_token(args.token))
    try:
        if args.action == "cancel":
            reply = client.cancel(args.uid)
            if args.json:
                print(json.dumps(reply, indent=2, sort_keys=True))
            elif reply.get("cancelled"):
                print(f"Job {args.uid}: {reply.get('state')}")
            else:
                print(f"Job {args.uid} is already {reply.get('state')}; "
                      "nothing to cancel")
            return 0
        if args.action == "result":
            reply = client.result(args.uid)
            if args.output:
                from repro.utils.serialization import dump_json

                # The payload nests the run under "sweep", the exact shape
                # `sweep --report` writes — compare --diff reads it as-is.
                path = dump_json({"sweep": reply["sweep"]}, args.output)
                print(f"Result of {args.uid} ({reply.get('state')}) "
                      f"written to {path}")
            else:
                print(json.dumps(reply, indent=2, sort_keys=True))
            return 0
        reply = client.status(args.uid)
        if args.json:
            print(json.dumps(reply, indent=2, sort_keys=True))
            return 0
        counts = reply.get("counts") or {}
        print(f"Job {reply.get('job')} ({reply.get('name')}): {reply.get('state')}"
              + (f" — {reply.get('error')}" if reply.get("error") else ""))
        print(f"  cells: {counts.get('settled', 0)}/{counts.get('cells', 0)} "
              f"settled, {counts.get('leased', 0)} leased, "
              f"{counts.get('failed', 0)} failed")
        for uid, cell in sorted((reply.get("cells_detail") or {}).items()):
            worker = f" on {cell.get('worker')}" if cell.get("worker") else ""
            attempts = cell.get("attempts") or 0
            extra = f" (attempt {attempts})" if attempts > 1 else ""
            print(f"    {uid}: {cell.get('status')}{worker}{extra}")
        return 0
    except ShardProtocolError as exc:
        print(f"repro-codesign job {args.action}: {exc}", file=sys.stderr)
        return 1


def _run_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import build_report

    report = build_report(args.cache_dir)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(top=args.top))
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from repro.sweep import diff_results
    from repro.utils.serialization import dump_json

    diff = diff_results(args.diff[0], args.diff[1])
    print(diff.render(only_changed=args.only_changed))
    if args.report:
        path = dump_json(diff.as_dict(), args.report)
        print(f"Diff written to {path}")
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    from repro.sweep import cache_dir_stats, compact_cache_dir
    from repro.utils.tables import render_table

    if args.action == "gc":
        report = compact_cache_dir(
            args.cache_dir,
            max_age_days=args.max_age_days,
            max_size_mb=args.max_size_mb,
        )
        print(report.summary())
        return 0
    stats = cache_dir_stats(args.cache_dir)
    rows = [
        [ns.namespace, ns.entries, ns.shards, ns.bytes]
        for ns in stats.namespaces
    ]
    print(render_table(
        ["namespace", "entries", "shards", "bytes"], rows,
        title=f"Cache directory {stats.directory}",
    ))
    print(
        f"Totals: {stats.entries} entries in {stats.total_shards} shards, "
        f"{stats.total_bytes} bytes, {stats.corrupt_lines} corrupt lines, "
        f"{stats.duplicates} duplicates"
    )
    if stats.timing_entries:
        print(f"Timing hints: {stats.timing_entries} cost hint(s) in _timings.json")
    if stats.checkpoint_records or stats.checkpoint_corrupt_lines:
        print(
            f"Checkpoint: {stats.checkpoint_outcomes} completed, "
            f"{stats.checkpoint_failures} failed cell(s) recorded"
            + (
                f", {stats.checkpoint_corrupt_lines} corrupt line(s)"
                if stats.checkpoint_corrupt_lines else ""
            )
        )
    if stats.corrupt_lines or stats.duplicates or stats.checkpoint_corrupt_lines:
        print("Hint: run 'repro-codesign cache gc --cache-dir ...' to repair and compact.")
    return 0


def _default_lint_paths() -> list[str]:
    """What ``lint`` scans when no paths are given.

    Prefer the working tree's ``src/repro`` (the common case: running at
    the repo root, as CI does); fall back to the installed package so the
    command still works from anywhere.
    """
    import pathlib

    tree = pathlib.Path("src") / "repro"
    if tree.is_dir():
        return [str(tree)]
    import repro

    return [str(pathlib.Path(repro.__file__).parent)]


def _run_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        all_checkers,
        discover_baseline,
        lint_paths,
        save_baseline,
    )

    if args.list_rules:
        for rule, checker in sorted(all_checkers().items()):
            print(f"{rule}")
            print(f"  {checker.description}")
            print(f"  contract: {checker.contract}")
        return 0

    paths = args.paths or _default_lint_paths()
    baseline = None
    if not args.no_baseline:
        if args.baseline:
            baseline = args.baseline
        else:
            baseline = discover_baseline(paths[0])
    try:
        report = lint_paths(paths, rules=args.rules, baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-codesign lint: error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if args.rules:
            print("repro-codesign lint: error: --update-baseline must run "
                  "the full rule set (drop --rule)", file=sys.stderr)
            return 2
        from repro.analysis import BASELINE_FILENAME

        target = args.baseline or str(baseline or BASELINE_FILENAME)
        # Grandfather what is active now *plus* what the old baseline still
        # excuses, so updating never un-grandfathers an untouched finding.
        path = save_baseline(target, [*report.findings, *report.baselined])
        print(f"Baseline written to {path} "
              f"({len(report.findings) + len(report.baselined)} finding(s))")
        return 0

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _run_experiment(name: str) -> int:
    if name == "fig4":
        from repro.experiments.fig4 import report_fig4, run_fig4
        print(report_fig4(run_fig4()).render())
    elif name == "fig5":
        from repro.experiments.fig5 import report_fig5, run_fig5
        print(report_fig5(run_fig5()).render())
    elif name == "fig6":
        from repro.experiments.fig6 import report_fig6, run_fig6
        print(report_fig6(run_fig6()).render())
    elif name == "table2":
        from repro.experiments.table2 import report_table2, run_table2
        print(report_table2(run_table2()).render())
    elif name == "ablations":
        from repro.experiments.ablations import (
            report_ablations,
            run_codesign_vs_topdown,
            run_quantization_sweep,
            run_scd_vs_random,
            run_tile_sweep,
        )
        report = report_ablations(
            run_scd_vs_random(),
            run_tile_sweep(),
            run_quantization_sweep(),
            run_codesign_vs_topdown(),
        )
        print(report.render())
    else:  # pragma: no cover - argparse already restricts choices
        raise ValueError(f"Unknown experiment '{name}'")
    return 0


def _run_codegen(args: argparse.Namespace) -> int:
    from repro.experiments.reference_designs import reference_dnn1, reference_dnn2, reference_dnn3

    design_map = {"DNN1": reference_dnn1, "DNN2": reference_dnn2, "DNN3": reference_dnn3}
    config = design_map[args.design]()
    device = get_device(args.device)
    engine = AutoHLS(device, clock_mhz=args.clock)
    result = engine.generate(config, clock_mhz=args.clock)
    paths = result.design.write_to(args.output)
    print(result.report.summary())
    print("Generated files:")
    for path in paths:
        print(f"  {path}")
    return 0


def _run_bundles() -> int:
    from repro.core.bundle_generation import default_bundle_catalog

    for bundle in default_bundle_catalog():
        print(f"{bundle.bundle_id:3d}  {bundle.signature}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-codesign`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    log_level = getattr(args, "log_level", None)
    if log_level is not None:
        configure_logging(log_level)
    elif getattr(args, "verbose", False):
        configure_logging()
    if getattr(args, "telemetry", False):
        telemetry.enable()
    if args.command == "telemetry":
        return _run_telemetry(args)
    if args.command == "codesign":
        return _run_codesign(args)
    if args.command == "search":
        return _run_search(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "shard":
        return _run_shard(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "jobs":
        return _run_jobs(args)
    if args.command == "job":
        return _run_job(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "experiment":
        return _run_experiment(args.name)
    if args.command == "codegen":
        return _run_codegen(args)
    if args.command == "bundles":
        return _run_bundles()
    parser.error(f"Unknown command {args.command}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
