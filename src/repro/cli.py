"""Command-line interface for the co-design flow and the experiments.

Examples
--------
Run the full co-design flow on PYNQ-Z1::

    repro-codesign codesign --device pynq-z1 --fps 10 15 20

Run the DNN search step with a pluggable exploration strategy, parallel
evaluation workers and an archivable journal::

    repro-codesign search --strategy evolutionary --workers 4 --journal out.json

Fan a device x strategy x latency-target sweep out across worker processes
with a persistent evaluation cache and a comparison report::

    repro-codesign sweep --devices pynq-z1,ultra96 --strategies scd,random \
        --workers 4 --cache-dir .sweep-cache --report sweep.json \
        --timeout-s 300 --retries 1

Resume a sweep that died mid-run (only the failed / missing grid cells
re-execute; checkpointed outcomes are reused verbatim)::

    repro-codesign sweep --devices pynq-z1,ultra96 --strategies scd,random \
        --workers 4 --cache-dir .sweep-cache --resume

Inspect or garbage-collect a persistent sweep cache::

    repro-codesign cache stats --cache-dir .sweep-cache
    repro-codesign cache gc --cache-dir .sweep-cache --max-age-days 30 --max-size-mb 64

Regenerate a specific paper artefact::

    repro-codesign experiment table2
    repro-codesign experiment fig4

Generate the accelerator C code for a reference design::

    repro-codesign codegen --design DNN1 --output ./generated
"""

from __future__ import annotations

import argparse
import sys

from repro.core import CoDesignFlow, CoDesignInputs, LatencyTarget
from repro.core.auto_hls import AutoHLS
from repro.detection.task import DAC_SDC_TASK
from repro.hw.device import get_device, list_devices
from repro.search import SearchSession, available_strategies
from repro.utils.logging import configure_logging


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    """Search-budget arguments shared by codesign / search / sweep."""
    parser.add_argument("--fps", type=float, nargs="+", default=[10.0, 15.0, 20.0],
                        help="latency targets in frames per second")
    parser.add_argument("--tolerance-ms", type=float, default=8.0,
                        help="latency tolerance band")
    parser.add_argument("--top-bundles", type=int, default=5, help="number of bundles to select")
    parser.add_argument("--candidates", type=int, default=2, help="candidates per bundle per target")
    parser.add_argument("--iterations", type=int, default=120, help="search iteration budget")
    parser.add_argument("--seed", type=int, default=2019, help="search seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-codesign",
        description="FPGA/DNN co-design (DAC 2019) reproduction",
    )
    parser.add_argument("--verbose", action="store_true", help="enable INFO logging")
    sub = parser.add_subparsers(dest="command", required=True)

    codesign = sub.add_parser("codesign", help="run the full co-design flow")
    codesign.add_argument("--device", default="pynq-z1", help=f"target device ({', '.join(list_devices())})")
    _add_budget_args(codesign)

    search = sub.add_parser("search", help="run the DNN search with a pluggable strategy")
    search.add_argument("--strategy", default="scd", choices=available_strategies(),
                        help="exploration strategy")
    search.add_argument("--workers", type=int, default=1,
                        help="parallel evaluation worker threads (1 = serial, reproducible)")
    search.add_argument("--journal", default=None,
                        help="write the SearchSession journal JSON to this path")
    search.add_argument("--device", default="pynq-z1", help=f"target device ({', '.join(list_devices())})")
    _add_budget_args(search)

    sweep = sub.add_parser(
        "sweep", help="fan a device x strategy x target grid across worker processes"
    )
    sweep.add_argument("--devices", default="pynq-z1",
                       help=f"comma-separated device names ('all' = {', '.join(list_devices())})")
    sweep.add_argument("--strategies", default="scd",
                       help=f"comma-separated strategies ({', '.join(available_strategies())})")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process serial)")
    sweep.add_argument("--clocks", type=float, nargs="+", default=None,
                       help="accelerator clock axis in MHz (default: device default clock)")
    sweep.add_argument("--utilizations", type=float, nargs="+", default=[1.0],
                       help="resource-utilization-limit axis, each in (0, 1]")
    sweep.add_argument("--schedule", choices=["steal", "chunked"], default="steal",
                       help="cell dispatch: cost-ordered work-stealing or static chunks")
    sweep.add_argument("--timeout-s", type=float, default=None,
                       help="per-cell wall-clock timeout floor (work-stealing schedule "
                            "only); scaled up per cell from recorded cost hints")
    sweep.add_argument("--timeout-scale", type=float, default=3.0,
                       help="multiplier over a cell's recorded duration when computing "
                            "its effective timeout (--timeout-s is the floor)")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retries per failed/timed-out cell before recording a failure")
    sweep.add_argument("--retry-backoff-s", type=float, default=0.1,
                       help="base of the deterministic exponential retry backoff "
                            "(0 disables backoff)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume from <cache-dir>/_checkpoint.jsonl: reuse completed "
                            "cells, re-run only failed/missing ones")
    sweep.add_argument("--from", dest="resume_from", default=None, metavar="PATH",
                       help="explicit resume source: a _checkpoint.jsonl or a saved "
                            "sweep result/report JSON (implies --resume)")
    sweep.add_argument("--per-cell-prep", action="store_true",
                       help="re-run model fit + bundle selection in every cell "
                            "(default: prepared once per device and shared)")
    sweep.add_argument("--cache-dir", default=None,
                       help="persistent evaluation-cache directory (JSON-lines shards)")
    sweep.add_argument("--report", default=None,
                       help="write the comparison report JSON to this path")
    _add_budget_args(sweep)

    cache = sub.add_parser(
        "cache", help="inspect or compact a persistent sweep evaluation-cache directory"
    )
    cache.add_argument("action", choices=["stats", "gc"],
                       help="stats: summarise the directory; gc: compact and evict")
    cache.add_argument("--cache-dir", required=True, help="cache directory to operate on")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="gc: evict entries older than this many days")
    cache.add_argument("--max-size-mb", type=float, default=None,
                       help="gc: evict oldest entries until the directory fits this budget")

    experiment = sub.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument("name", choices=["fig4", "fig5", "fig6", "table2", "ablations"],
                            help="which table / figure to regenerate")

    codegen = sub.add_parser("codegen", help="generate accelerator C code for a reference design")
    codegen.add_argument("--design", choices=["DNN1", "DNN2", "DNN3"], default="DNN1")
    codegen.add_argument("--device", default="pynq-z1")
    codegen.add_argument("--clock", type=float, default=100.0)
    codegen.add_argument("--output", default="./generated", help="output directory")

    bundles = sub.add_parser("bundles", help="list the default bundle catalogue")
    del bundles
    return parser


def _build_flow(args: argparse.Namespace, **flow_kwargs) -> CoDesignFlow:
    """Construct the co-design flow shared by the codesign / search commands."""
    device = get_device(args.device)
    targets = tuple(
        LatencyTarget(fps=f, clock_mhz=device.default_clock_mhz, tolerance_ms=args.tolerance_ms)
        for f in args.fps
    )
    inputs = CoDesignInputs(task=DAC_SDC_TASK, device=device, latency_targets=targets)
    return CoDesignFlow(
        inputs,
        candidates_per_bundle=args.candidates,
        top_n_bundles=args.top_bundles,
        scd_iterations=args.iterations,
        rng=args.seed,
        **flow_kwargs,
    )


def _run_codesign(args: argparse.Namespace) -> int:
    flow = _build_flow(args)
    result = flow.run()
    print(result.summary())
    return 0


def _run_search(args: argparse.Namespace) -> int:
    from repro.core.auto_dnn import AutoDNN

    flow = _build_flow(args, search_strategy=args.strategy, search_workers=args.workers)
    session = SearchSession(
        name=f"search-{args.strategy}",
        metadata={
            "strategy": args.strategy,
            "seed": args.seed,
            "workers": args.workers,
            "device": args.device,
            "fps": list(args.fps),
            "tolerance_ms": args.tolerance_ms,
            "iterations": args.iterations,
        },
    )
    flow.step1_modeling()
    _, _, selected = flow.step2_bundle_selection()
    candidates = flow.step3_search(selected, session=session)
    best = AutoDNN.best_per_target(candidates, flow.inputs.latency_targets)

    print(f"Search strategy '{args.strategy}' on {flow.inputs.device.name} "
          f"({args.workers} worker{'s' if args.workers != 1 else ''})")
    print(f"  selected bundles  : {[b.bundle_id for b in selected]}")
    print(f"  explored DNNs     : {len(candidates)}")
    print(f"  {flow.auto_dnn.cache.stats().summary()}")
    for target, candidate in best.items():
        if candidate is None:
            print(f"  {target}: no candidate met the target")
        else:
            print(f"  {target}: {candidate.summary()}")
    print(session.summary())
    if args.journal:
        path = session.save(args.journal)
        print(f"Journal written to {path}")
    return 0


def _resolve_resume_source(args: argparse.Namespace):
    """Where a ``--resume`` run reads prior outcomes from (None = fresh)."""
    import pathlib

    from repro.sweep import CHECKPOINT_FILENAME

    if args.resume_from:
        return args.resume_from
    if not args.resume:
        return None
    if args.cache_dir is None:
        raise ValueError(
            "--resume needs --cache-dir (the checkpoint lives there) "
            "or an explicit --from <checkpoint|result.json>"
        )
    checkpoint = pathlib.Path(args.cache_dir) / CHECKPOINT_FILENAME
    if not checkpoint.exists():
        # First run of a resumable pipeline: nothing to resume yet.
        print(f"No checkpoint at {checkpoint}; starting a fresh sweep.")
        return None
    return str(checkpoint)


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, build_grid, compare
    from repro.utils.serialization import dump_json

    resume_from = _resolve_resume_source(args)
    tasks = build_grid(
        args.devices,
        args.strategies,
        args.fps,
        tolerance_ms=args.tolerance_ms,
        iterations=args.iterations,
        num_candidates=args.candidates,
        top_bundles=args.top_bundles,
        seed=args.seed,
        clocks_mhz=args.clocks,
        utilizations=args.utilizations,
    )
    runner = SweepRunner(
        tasks,
        workers=args.workers,
        cache_dir=args.cache_dir,
        schedule=args.schedule,
        timeout_s=args.timeout_s,
        timeout_scale=args.timeout_scale,
        retries=args.retries,
        retry_backoff_s=args.retry_backoff_s,
        share_preparation=not args.per_cell_prep,
        resume_from=resume_from,
    )
    result = runner.run()
    comparison = compare(result) if result.outcomes else None
    print(result.summary())
    print()
    if comparison is not None:
        print(comparison.render())
    else:
        print("No surviving cells to compare.")
    if args.report:
        payload = {"sweep": result.as_dict()}
        if comparison is not None:
            payload["comparison"] = comparison.as_dict()
        path = dump_json(payload, args.report)
        print(f"Report written to {path}")
    return 0 if result.ok else 1


def _run_cache(args: argparse.Namespace) -> int:
    from repro.sweep import cache_dir_stats, compact_cache_dir
    from repro.utils.tables import render_table

    if args.action == "gc":
        report = compact_cache_dir(
            args.cache_dir,
            max_age_days=args.max_age_days,
            max_size_mb=args.max_size_mb,
        )
        print(report.summary())
        return 0
    stats = cache_dir_stats(args.cache_dir)
    rows = [
        [ns.namespace, ns.entries, ns.shards, ns.bytes]
        for ns in stats.namespaces
    ]
    print(render_table(
        ["namespace", "entries", "shards", "bytes"], rows,
        title=f"Cache directory {stats.directory}",
    ))
    print(
        f"Totals: {stats.entries} entries in {stats.total_shards} shards, "
        f"{stats.total_bytes} bytes, {stats.corrupt_lines} corrupt lines, "
        f"{stats.duplicates} duplicates"
    )
    if stats.timing_entries:
        print(f"Timing hints: {stats.timing_entries} cost hint(s) in _timings.json")
    if stats.checkpoint_records or stats.checkpoint_corrupt_lines:
        print(
            f"Checkpoint: {stats.checkpoint_outcomes} completed, "
            f"{stats.checkpoint_failures} failed cell(s) recorded"
            + (
                f", {stats.checkpoint_corrupt_lines} corrupt line(s)"
                if stats.checkpoint_corrupt_lines else ""
            )
        )
    if stats.corrupt_lines or stats.duplicates or stats.checkpoint_corrupt_lines:
        print("Hint: run 'repro-codesign cache gc --cache-dir ...' to repair and compact.")
    return 0


def _run_experiment(name: str) -> int:
    if name == "fig4":
        from repro.experiments.fig4 import report_fig4, run_fig4
        print(report_fig4(run_fig4()).render())
    elif name == "fig5":
        from repro.experiments.fig5 import report_fig5, run_fig5
        print(report_fig5(run_fig5()).render())
    elif name == "fig6":
        from repro.experiments.fig6 import report_fig6, run_fig6
        print(report_fig6(run_fig6()).render())
    elif name == "table2":
        from repro.experiments.table2 import report_table2, run_table2
        print(report_table2(run_table2()).render())
    elif name == "ablations":
        from repro.experiments.ablations import (
            report_ablations,
            run_codesign_vs_topdown,
            run_quantization_sweep,
            run_scd_vs_random,
            run_tile_sweep,
        )
        report = report_ablations(
            run_scd_vs_random(),
            run_tile_sweep(),
            run_quantization_sweep(),
            run_codesign_vs_topdown(),
        )
        print(report.render())
    else:  # pragma: no cover - argparse already restricts choices
        raise ValueError(f"Unknown experiment '{name}'")
    return 0


def _run_codegen(args: argparse.Namespace) -> int:
    from repro.experiments.reference_designs import reference_dnn1, reference_dnn2, reference_dnn3

    design_map = {"DNN1": reference_dnn1, "DNN2": reference_dnn2, "DNN3": reference_dnn3}
    config = design_map[args.design]()
    device = get_device(args.device)
    engine = AutoHLS(device, clock_mhz=args.clock)
    result = engine.generate(config, clock_mhz=args.clock)
    paths = result.design.write_to(args.output)
    print(result.report.summary())
    print("Generated files:")
    for path in paths:
        print(f"  {path}")
    return 0


def _run_bundles() -> int:
    from repro.core.bundle_generation import default_bundle_catalog

    for bundle in default_bundle_catalog():
        print(f"{bundle.bundle_id:3d}  {bundle.signature}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-codesign`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    if args.command == "codesign":
        return _run_codesign(args)
    if args.command == "search":
        return _run_search(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "experiment":
        return _run_experiment(args.name)
    if args.command == "codegen":
        return _run_codegen(args)
    if args.command == "bundles":
        return _run_bundles()
    parser.error(f"Unknown command {args.command}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
