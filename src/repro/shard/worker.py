"""Shard worker: pull leased cells from a coordinator and stream results back.

A worker is a thin loop around the *existing* single-cell execution path
(:func:`repro.sweep.runner.run_sweep_task`): register → lease → execute →
report, with a daemon heartbeat thread keeping the leases alive.  Nothing
about cell execution is distributed-specific — the worker rebuilds the
:class:`~repro.sweep.runner.PreparedTarget` shipped by the coordinator
(bit-exact JSON round trip) and calls the same function the local
schedules call, so a cell's journal is byte-identical no matter which
machine ran it.

``workers=1`` executes leased cells serially in-process (easiest to debug
and test; a custom ``task_fn`` need not be picklable).  ``workers > 1``
fans cells out across a local :class:`~concurrent.futures.
ProcessPoolExecutor` — one shard worker per machine, one OS process per
concurrent cell, mirroring the local sweep's process model.

Failure handling is deliberately asymmetric: the *coordinator* owns all
retry/requeue policy.  A worker reports raw errors and keeps going; it
never retries a cell on its own (that would skew the coordinator's
bounded per-cell attempt accounting).  A worker that loses its
coordinator exits non-zero after bounded reconnect attempts — unless it
already observed ``done=True``, which is the normal shutdown path.

A worker may keep its own ``cache_dir`` for the persistent estimator
cache (per-machine, like any local sweep); journals do not depend on
cache warmth, so byte-identity across the fleet is unaffected.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional

from repro.shard.protocol import (
    PROTOCOL_VERSION,
    ShardProtocolError,
    outcome_to_wire,
    post_json,
    prepared_from_wire,
    task_from_wire,
)
import repro.telemetry as telemetry
from repro.sweep.runner import PreparedTarget, SweepOutcome, run_sweep_task
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def execute_cell(task_fn, task, cache_dir, prepared) -> tuple[str, object, float]:
    """Run one leased cell; report ``(status, value, duration_s)`` either way.

    Module-level (and defaulting to the picklable
    :func:`~repro.sweep.runner.run_sweep_task`) so it ships into the
    worker's local process pool under any start method.
    """
    start = time.perf_counter()
    try:
        value = task_fn(task, cache_dir, prepared)
    except Exception as exc:  # noqa: BLE001 - reported to the coordinator
        return ("error", f"{type(exc).__name__}: {exc}", time.perf_counter() - start)
    if not isinstance(value, SweepOutcome):
        return (
            "error",
            f"worker returned {type(value).__name__!s} instead of SweepOutcome",
            time.perf_counter() - start,
        )
    return ("ok", value, time.perf_counter() - start)


def _execute_cell_pooled(task_fn, task, cache_dir, prepared):
    """Pool-process variant of :func:`execute_cell`: ships metrics home.

    Resets the (fork-inherited) telemetry state first so the returned
    snapshot holds exactly this cell's measurements, then appends it to the
    ``execute_cell`` triple.  The serial path needs none of this: it already
    accumulates into the worker's own registry.
    """
    telemetry.reset()
    status, value, duration = execute_cell(task_fn, task, cache_dir, prepared)
    return status, value, duration, telemetry.snapshot()


class ShardWorker:
    """One worker process in a distributed sweep fleet."""

    def __init__(
        self,
        connect: str,
        *,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        name: Optional[str] = None,
        task_fn: Callable[..., SweepOutcome] = run_sweep_task,
        request_timeout_s: float = 30.0,
        max_connect_failures: int = 10,
        reconnect_delay_s: float = 0.5,
        token: Optional[str] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_connect_failures < 1:
            raise ValueError("max_connect_failures must be >= 1")
        if idle_timeout_s is not None and idle_timeout_s < 0:
            raise ValueError("idle_timeout_s must be >= 0")
        self.connect = connect.rstrip("/")
        if not self.connect.startswith(("http://", "https://")):
            self.connect = "http://" + self.connect
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.task_fn = task_fn
        self.request_timeout_s = request_timeout_s
        self.max_connect_failures = max_connect_failures
        self.reconnect_delay_s = reconnect_delay_s
        self.token = token or None
        # None keeps the one-shot contract (exit only on done); a number
        # makes an idle worker (no work in any job) back off and exit 0
        # after that many seconds without a lease — the multi-job default.
        self.idle_timeout_s = idle_timeout_s

        self.worker_id: Optional[str] = None
        self.heartbeat_s = 5.0
        self.poll_s = 0.5
        self.executed = 0
        self.reported_errors = 0
        self._prepared: dict[str, PreparedTarget] = {}
        self._lease_lock = threading.Lock()
        self._active_leases: set[str] = set()
        self._saw_done = threading.Event()
        self._stop = threading.Event()
        self._idle_since: Optional[float] = None
        self._idle_rounds = 0
        self._cache_sync = False
        self._cache_pushed: set[tuple[str, str]] = set()

    # ----------------------------------------------------------------- wire io
    def _post(self, path: str, payload: dict) -> dict:
        return post_json(self.connect, path, payload,
                         timeout_s=self.request_timeout_s, token=self.token)

    def _register(self) -> None:
        reply = self._post("/v1/register", {
            "name": self.name, "version": PROTOCOL_VERSION,
        })
        self.worker_id = str(reply["worker_id"])
        self.heartbeat_s = float(reply.get("heartbeat_s", self.heartbeat_s))
        self.poll_s = float(reply.get("poll_s", self.poll_s))
        logger.info("shard worker %s registered as %s at %s",
                    self.name, self.worker_id, self.connect)
        self._cache_sync = bool(reply.get("cache")) and self.cache_dir is not None
        if self._cache_sync:
            self._pull_cache()

    # --------------------------------------------------------------- cache sync
    def _pull_cache(self) -> None:
        """Warm-start: bulk-import the coordinator's estimator-cache records."""
        from repro.sweep.disk_cache import append_cache_records

        try:
            reply = self._post("/v1/cache/pull", {"worker_id": self.worker_id})
        except ShardProtocolError as exc:
            logger.warning("shard worker %s: cache pull failed: %s",
                           self.worker_id, exc)
            return
        records = [r for r in (reply.get("records") or []) if isinstance(r, dict)]
        for record in records:
            namespace, key = record.get("namespace"), record.get("key")
            if isinstance(namespace, str) and isinstance(key, str):
                # The coordinator already holds these; never push them back.
                self._cache_pushed.add((namespace, key))
        if not records:
            return
        added = append_cache_records(self.cache_dir, records,
                                     shard=f"pulled-{self.worker_id}")
        if added:
            logger.info("shard worker %s: warm-started %d cached estimate(s)",
                        self.worker_id, added)
            telemetry.event("shard.cache.pulled", records=added)

    def _push_cache(self) -> None:
        """Ship locally-computed estimates the coordinator has not seen yet."""
        if not self._cache_sync:
            return
        from repro.sweep.disk_cache import read_cache_records

        fresh = [
            record for record in read_cache_records(self.cache_dir)
            if (record["namespace"], record["key"]) not in self._cache_pushed
        ]
        if not fresh:
            return
        try:
            self._post("/v1/cache/push",
                       {"worker_id": self.worker_id, "records": fresh})
        except ShardProtocolError as exc:
            logger.debug("shard worker %s: cache push failed: %s",
                         self.worker_id, exc)
            return
        self._cache_pushed.update(
            (record["namespace"], record["key"]) for record in fresh
        )

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            with self._lease_lock:
                leases = sorted(self._active_leases)
            try:
                reply = self._post("/v1/heartbeat", {
                    "worker_id": self.worker_id, "lease_ids": leases,
                })
            except ShardProtocolError:
                continue  # transient; the main loop handles a dead coordinator
            if reply.get("done"):
                self._saw_done.set()
            lost = reply.get("lost") or []
            if lost:
                logger.warning(
                    "shard worker %s: coordinator revoked lease(s) %s "
                    "(results will be reported anyway and deduplicated)",
                    self.worker_id, ", ".join(map(str, lost)),
                )

    def _lease(self, slots: int) -> dict:
        reply = self._post("/v1/lease", {
            "worker_id": self.worker_id,
            "slots": slots,
            "known_preps": sorted(self._prepared),
        })
        for key, wire in (reply.get("prepared") or {}).items():
            if key not in self._prepared:
                self._prepared[key] = prepared_from_wire(wire)
        if reply.get("done"):
            self._saw_done.set()
        return reply

    def _report(self, lease_id: str, uid: str, status: str, value,
                duration_s: float, job: Optional[str] = None) -> None:
        payload = {
            "worker_id": self.worker_id,
            "lease_id": lease_id,
            "uid": uid,
            "status": status,
            "duration_s": duration_s,
        }
        if job is not None:
            payload["job"] = job
        if status == "ok":
            payload["outcome"] = outcome_to_wire(value)
        else:
            payload["error"] = str(value)
            self.reported_errors += 1
        reply = self._post("/v1/report", payload)
        if reply.get("done"):
            self._saw_done.set()
        if not reply.get("accepted"):
            logger.info("shard worker %s: report for %s dropped (%s)",
                        self.worker_id, uid, reply.get("reason"))
        with self._lease_lock:
            self._active_leases.discard(lease_id)
        self._push_cache()

    # ------------------------------------------------------------------- main
    def run(self) -> int:
        """Work until the coordinator reports the grid done.

        Returns a process exit code: 0 after a clean ``done`` shutdown,
        1 when the coordinator became unreachable mid-run.
        """
        failures = 0
        while True:
            try:
                self._register()
                break
            except ShardProtocolError as exc:
                failures += 1
                if failures >= self.max_connect_failures:
                    logger.error("shard worker %s: cannot reach coordinator: %s",
                                 self.name, exc)
                    return 1
                time.sleep(self.reconnect_delay_s)

        heartbeat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        heartbeat.start()
        try:
            if self.workers == 1:
                return self._run_serial()
            return self._run_pooled()
        finally:
            self._stop.set()
            heartbeat.join(timeout=2.0)

    def _checked(self, call: Callable[[], dict]) -> Optional[dict]:
        """One coordinator round trip with bounded-failure accounting."""
        failures = 0
        while True:
            try:
                return call()
            except ShardProtocolError as exc:
                if self._saw_done.is_set():
                    return None  # grid finished; the socket is simply gone
                failures += 1
                if failures >= self.max_connect_failures:
                    logger.error("shard worker %s: lost the coordinator: %s",
                                 self.worker_id or self.name, exc)
                    raise
                time.sleep(self.reconnect_delay_s)

    def _idle_pause(self, reply: dict) -> bool:
        """Backoff sleep between empty leases; True once the idle budget is spent.

        One-shot grids never get here with ``done`` unset for long, so the
        default (``idle_timeout_s=None``) polls forever — the coordinator's
        ``done`` reply is the shutdown signal.  Against a persistent
        multi-job service, "no work in any job" is an ordinary steady
        state: the worker backs off exponentially (bounded) and only exits
        0 when a configured idle timeout elapses with no lease granted.
        """
        now = time.monotonic()
        if self._idle_since is None:
            self._idle_since = now
        elif self.idle_timeout_s is not None \
                and now - self._idle_since >= self.idle_timeout_s:
            logger.info("shard worker %s: no work for %.1fs; exiting on idle timeout",
                        self.worker_id, now - self._idle_since)
            return True
        base = max(float(reply.get("retry_after_s", self.poll_s)), 0.05)
        delay = min(base * (2.0 ** self._idle_rounds), max(base, 2.0))
        self._idle_rounds += 1
        if self.idle_timeout_s is not None:
            remaining = self.idle_timeout_s - (time.monotonic() - self._idle_since)
            delay = min(delay, max(remaining, 0.05))
        time.sleep(delay)
        return False

    def _note_work(self) -> None:
        self._idle_since = None
        self._idle_rounds = 0

    def _run_serial(self) -> int:
        try:
            while True:
                reply = self._checked(lambda: self._lease(1))
                if reply is None:
                    return 0
                cells = reply.get("cells") or []
                if not cells:
                    if reply.get("done"):
                        return 0
                    if self._idle_pause(reply):
                        return 0
                    continue
                self._note_work()
                for cell in cells:
                    lease_id = str(cell["lease_id"])
                    uid = str(cell["uid"])
                    job = cell.get("job")
                    with self._lease_lock:
                        self._active_leases.add(lease_id)
                    task = task_from_wire(cell["task"])
                    prepared = self._prepared.get(cell.get("prep") or "")
                    status, value, duration = execute_cell(
                        self.task_fn, task, self.cache_dir, prepared)
                    self.executed += 1
                    if self._checked(
                        lambda lid=lease_id, u=uid, s=status, v=value, d=duration,
                        j=job: self._report(lid, u, s, v, d, j) or {}
                    ) is None:
                        return 0
        except ShardProtocolError:
            return 1

    def _run_pooled(self) -> int:
        in_flight: dict = {}  # future -> (lease_id, uid, job)
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                while True:
                    free = self.workers - len(in_flight)
                    if free > 0:
                        reply = self._checked(lambda: self._lease(free))
                        if reply is None:
                            return 0
                        cells = reply.get("cells") or []
                        for cell in cells:
                            lease_id = str(cell["lease_id"])
                            uid = str(cell["uid"])
                            with self._lease_lock:
                                self._active_leases.add(lease_id)
                            task = task_from_wire(cell["task"])
                            prepared = self._prepared.get(cell.get("prep") or "")
                            future = pool.submit(_execute_cell_pooled, self.task_fn,
                                                 task, self.cache_dir, prepared)
                            in_flight[future] = (lease_id, uid, cell.get("job"))
                        if cells:
                            self._note_work()
                        elif not in_flight:
                            if reply.get("done"):
                                return 0
                            if self._idle_pause(reply):
                                return 0
                            continue
                    if in_flight:
                        # Bounded wait so freed slots keep leasing while slow
                        # cells are still running.
                        done, _ = wait(in_flight, timeout=0.5,
                                       return_when=FIRST_COMPLETED)
                        for future in done:
                            lease_id, uid, job = in_flight.pop(future)
                            try:
                                status, value, duration, cell_metrics = future.result()
                            except Exception as exc:  # noqa: BLE001 - pool-level crash
                                status, value, duration, cell_metrics = (
                                    "error", f"{type(exc).__name__}: {exc}", 0.0, None)
                            telemetry.merge(cell_metrics)
                            self.executed += 1
                            if self._checked(
                                lambda lid=lease_id, u=uid, s=status, v=value,
                                d=duration, j=job: self._report(lid, u, s, v, d, j) or {}
                            ) is None:
                                return 0
        except ShardProtocolError:
            return 1
