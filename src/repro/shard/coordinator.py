"""Lease-based shard coordinator: owns the grid, leases cells to workers.

The coordinator is the *only* writer of sweep state.  It owns the task
grid, hands cells out as bounded-lifetime **leases**, collects streamed
:class:`~repro.sweep.runner.SweepOutcome` / ``SweepFailure`` records, and
settles each cell exactly once — the settle callbacks append to the very
same fsynced ``_checkpoint.jsonl`` the single-machine sweep writes, so a
distributed run is checkpointed, resumable and comparable with the
existing tooling, byte for byte.

Fault model
-----------
* **Dead worker** — heartbeats stop, the lease's ``expires_at`` passes,
  the cell is requeued (its attempt already counted).  Reassignment per
  cell is bounded by the runner's ``retries`` budget; a cell whose every
  assignment dies becomes a structured ``SweepFailure(kind="crash")``.
* **Stalled cell** — heartbeats keep arriving but the cell exceeds its
  effective per-cell timeout (the PR-4 cost-hint-scaled deadline); the
  lease is revoked and the cell requeued / failed as ``kind="timeout"``.
* **Duplicate completion** — a revoked lease's worker may still finish
  and report.  Settlement is keyed by task uid and **first record wins**;
  later reports are acknowledged but dropped, so reassignment can never
  double-settle a cell.  (Journals are deterministic per task, so any
  duplicate is byte-identical anyway — the dedup keeps the accounting
  single-valued.)
* **Retry pacing** — a requeued cell re-enters the queue after the
  runner's deterministic exponential backoff, exactly like the local
  work-stealing schedule.

Ordering is the runner's longest-expected-first cost order: the lease
queue is primed with the cost-sorted indices, so remote fleets see the
same dispatch policy as local pools.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.shard.protocol import (
    AUTH_HEADER,
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_POLL_S,
    PROTOCOL_VERSION,
    ShardProtocolError,
    outcome_from_wire,
    prepared_to_wire,
    require,
    task_to_wire,
    token_matches,
)
import repro.telemetry as telemetry
from repro.sweep.runner import PreparedTarget, SweepFailure, SweepOutcome, SweepTask
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.runner import SweepRunner

logger = get_logger(__name__)


class _Cell:
    """Coordinator-side state of one grid cell."""

    __slots__ = (
        "index", "task", "attempts", "spent_s", "ready_at", "lease_id",
        "worker_id", "lease_started", "expires_at", "deadline_at",
        "timeout_s", "issued_leases", "status",
    )

    def __init__(self, index: int, task: SweepTask, timeout_s: Optional[float]) -> None:
        self.index = index
        self.task = task
        self.attempts = 0
        self.spent_s = 0.0
        self.ready_at = 0.0
        self.lease_id: Optional[str] = None
        self.worker_id: Optional[str] = None
        self.lease_started = 0.0
        self.expires_at = 0.0
        self.deadline_at: Optional[float] = None
        self.timeout_s = timeout_s
        self.issued_leases: set[str] = set()
        self.status = "pending"  # pending | leased | settled


class LeaseBoard:
    """Thread-safe lease-based work queue over (part of) a sweep grid.

    Pure in-memory state machine, independent of HTTP: the coordinator's
    request handlers and the tests drive it directly.  ``on_outcome`` /
    ``on_failure`` fire exactly once per cell, in the handler thread that
    settled it (the checkpoint writer behind them is thread-safe).
    """

    def __init__(
        self,
        tasks: Mapping[int, SweepTask],
        order: list[int],
        *,
        retries: int = 1,
        backoff: Callable[[int], float] = lambda attempts: 0.0,
        timeouts: Optional[Mapping[int, Optional[float]]] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        on_outcome: Optional[Callable[[int, SweepOutcome], None]] = None,
        on_failure: Optional[Callable[[int, SweepFailure], None]] = None,
        lease_prefix: str = "l",
        job: Optional[str] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.backoff = backoff
        self.lease_ttl_s = lease_ttl_s
        self.on_outcome = on_outcome
        self.on_failure = on_failure
        # Multi-board deployments (the job service) namespace lease ids with
        # a per-board prefix and label telemetry with the owning job uid.
        self.lease_prefix = lease_prefix
        self.job = job
        self._lock = threading.Lock()
        self._cells: dict[int, _Cell] = {
            index: _Cell(index, tasks[index],
                         (timeouts or {}).get(index))
            for index in order
        }
        self._by_uid: dict[str, int] = {
            cell.task.uid: index for index, cell in self._cells.items()
        }
        self._queue: list[int] = list(order)
        self._lease_seq = 0
        self._workers: dict[str, dict] = {}
        self._worker_seq = 0
        self.outcomes: dict[int, SweepOutcome] = {}
        self.failures: dict[int, SweepFailure] = {}
        # Lease-lifecycle counters, always on (they are a handful of integer
        # adds under the lock the handlers hold anyway): `/v1/metrics` and
        # `repro-codesign shard status` must work without --telemetry.
        self.metrics: dict[str, int] = {
            "granted": 0, "heartbeats": 0, "completed": 0, "failed": 0,
            "requeued": 0, "expired": 0, "revoked": 0, "duplicates": 0,
        }

    # ---------------------------------------------------------------- helpers
    @property
    def done(self) -> bool:
        with self._lock:
            return not self._queue and all(
                cell.status == "settled" for cell in self._cells.values()
            )

    def counts(self) -> dict:
        with self._lock:
            status = {"pending": 0, "leased": 0, "settled": 0}
            for cell in self._cells.values():
                status[cell.status] += 1
            return {
                "cells": len(self._cells),
                "pending": status["pending"],
                "leased": status["leased"],
                "settled": status["settled"],
                "failed": len(self.failures),
                "workers": len(self._workers),
                "done": status["settled"] == len(self._cells),
            }

    # ----------------------------------------------------------- introspection
    def metrics_counts(self) -> dict:
        """Copy of the always-on lease-lifecycle counters."""
        with self._lock:
            return dict(self.metrics)

    def cell_states(self) -> list[dict]:
        """Per-cell progress (uid, status, attempts, worker) in grid order."""
        with self._lock:
            return [
                {
                    "uid": cell.task.uid,
                    "status": cell.status,
                    "attempts": cell.attempts,
                    "worker": cell.worker_id,
                    "failed": cell.index in self.failures,
                }
                for cell in sorted(self._cells.values(), key=lambda c: c.index)
            ]

    def has_cell(self, uid: str) -> bool:
        with self._lock:
            return uid in self._by_uid

    def worker_stats(self) -> list[dict]:
        """Per-worker accounting for `/v1/metrics` and `shard status`."""
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "worker_id": worker_id,
                    "name": info["name"],
                    "leased": info.get("leased", 0),
                    "completed": info.get("completed", 0),
                    "errors": info.get("errors", 0),
                    "busy_s": round(info.get("busy_s", 0.0), 3),
                    "last_seen_s": round(max(now - info["last_seen"], 0.0), 3),
                }
                for worker_id, info in sorted(self._workers.items())
            ]

    # --------------------------------------------------------------- protocol
    def register(self, name: str) -> str:
        with self._lock:
            self._worker_seq += 1
            worker_id = f"w{self._worker_seq}"
            self._workers[worker_id] = {
                "name": name, "last_seen": time.monotonic(),
                "leased": 0, "completed": 0, "errors": 0, "busy_s": 0.0,
            }
            logger.info("shard: worker %s (%s) registered", worker_id, name)
        telemetry.event("shard.worker.registered", worker=worker_id,
                        worker_name=name, **self._job_tag())
        return worker_id

    def adopt_worker(self, worker_id: str, name: str = "worker") -> None:
        """Insert an externally-issued worker id (idempotent).

        The multi-job service registers each worker once at the service
        level and adopts it into every job board it touches, so lease /
        report / heartbeat accounting still works per board without the
        worker re-registering per job.
        """
        with self._lock:
            if worker_id not in self._workers:
                self._workers[worker_id] = {
                    "name": name, "last_seen": time.monotonic(),
                    "leased": 0, "completed": 0, "errors": 0, "busy_s": 0.0,
                }

    def lease(self, worker_id: str, slots: int) -> list[_Cell]:
        """Lease up to ``slots`` ready cells to ``worker_id``."""
        now = time.monotonic()
        self._expire_locked_leases(now)
        leased: list[_Cell] = []
        with self._lock:
            self._touch(worker_id, now)
            while len(leased) < max(slots, 0):
                position = next(
                    (p for p, index in enumerate(self._queue)
                     if self._cells[index].ready_at <= now),
                    None,
                )
                if position is None:
                    break
                index = self._queue.pop(position)
                cell = self._cells[index]
                self._lease_seq += 1
                cell.lease_id = f"{self.lease_prefix}{self._lease_seq}"
                cell.issued_leases.add(cell.lease_id)
                cell.worker_id = worker_id
                cell.attempts += 1
                cell.lease_started = now
                cell.expires_at = now + self.lease_ttl_s
                cell.deadline_at = (
                    now + cell.timeout_s if cell.timeout_s is not None else None
                )
                cell.status = "leased"
                self.metrics["granted"] += 1
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker["leased"] = worker.get("leased", 0) + 1
                leased.append(cell)
        # Telemetry events fire outside the lock: the sink fsyncs per record,
        # and handler threads must never block each other on disk.
        for cell in leased:
            telemetry.event(
                "shard.lease.granted", uid=cell.task.uid, worker=worker_id,
                lease=cell.lease_id, attempt=cell.attempts, **self._job_tag(),
            )
        return leased

    def heartbeat(self, worker_id: str, lease_ids: list[str]) -> list[str]:
        """Extend the worker's live leases; return the ids it has lost."""
        now = time.monotonic()
        self._expire_locked_leases(now)
        lost: list[str] = []
        with self._lock:
            self._touch(worker_id, now)
            self.metrics["heartbeats"] += 1
            live = {
                cell.lease_id: cell
                for cell in self._cells.values()
                if cell.status == "leased" and cell.worker_id == worker_id
            }
            for lease_id in lease_ids:
                cell = live.get(lease_id)
                if cell is None:
                    lost.append(lease_id)
                else:
                    cell.expires_at = now + self.lease_ttl_s
        return lost

    def report(
        self,
        worker_id: str,
        lease_id: str,
        uid: str,
        *,
        outcome: Optional[SweepOutcome] = None,
        error: Optional[str] = None,
        duration_s: float = 0.0,
    ) -> tuple[bool, str]:
        """Settle (or requeue) one reported cell; returns ``(accepted, reason)``.

        A successful report is matched by uid, not by live lease: a worker
        whose lease expired during a network hiccup may still deliver a
        valid result, and dropping it would waste the work.  A cell
        settled this way while sitting requeued is pulled back out of the
        queue, so it can never be leased — let alone settled — twice.

        *Error* reports, by contrast, only count against the cell's
        **current** lease: once the expiry reaper requeued (or another
        worker re-leased) the cell, that attempt's failure has already
        been accounted for, and acting on the stale report again would
        double-requeue the cell or fail a cell another worker is busy
        completing.  Only reports whose lease id was never issued for the
        cell are rejected outright.
        """
        settle_outcome: Optional[tuple[int, SweepOutcome]] = None
        settle_failure: Optional[tuple[int, SweepFailure]] = None
        events: list[tuple[str, dict]] = []
        now = time.monotonic()
        with self._lock:
            self._touch(worker_id, now)
            index = self._by_uid.get(uid)
            if index is None:
                return (False, "unknown-cell")
            cell = self._cells[index]
            if lease_id not in cell.issued_leases:
                return (False, "unknown-lease")
            if cell.status == "settled":
                self.metrics["duplicates"] += 1
                return (False, "duplicate")
            cell.spent_s += max(float(duration_s), 0.0)
            worker = self._workers.get(worker_id)
            if outcome is not None:
                outcome.attempts = cell.attempts
                if cell.status == "pending" and index in self._queue:
                    self._queue.remove(index)
                cell.status = "settled"
                cell.lease_id = None
                cell.worker_id = None
                self.outcomes[index] = outcome
                settle_outcome = (index, outcome)
                self.metrics["completed"] += 1
                if worker is not None:
                    worker["completed"] = worker.get("completed", 0) + 1
                    worker["busy_s"] = worker.get("busy_s", 0.0) + max(float(duration_s), 0.0)
                events.append(("shard.cell.completed", {
                    "uid": uid, "worker": worker_id,
                    "duration_s": round(max(float(duration_s), 0.0), 6),
                    **self._job_tag(),
                }))
            else:
                if cell.status != "leased" or lease_id != cell.lease_id:
                    # The reaper already requeued this attempt (or another
                    # worker holds the cell now); the stale failure must
                    # not be charged a second time.
                    return (False, "stale-lease")
                if worker is not None:
                    worker["errors"] = worker.get("errors", 0) + 1
                verdict = ("error", error or "worker reported an unspecified error")
                settled = self._requeue_or_fail(cell, verdict, now)
                if settled is not None:
                    settle_failure = (index, settled)
        # Callbacks and telemetry events run outside the lock: they fsync.
        if settle_outcome is not None and self.on_outcome is not None:
            self.on_outcome(*settle_outcome)
        if settle_failure is not None and self.on_failure is not None:
            self.on_failure(*settle_failure)
        for name, attrs in events:
            telemetry.event(name, **attrs)
        return (True, "settled" if settle_outcome or settle_failure else "requeued")

    def expire_leases(self) -> int:
        """Requeue (or fail) every lease that is past its TTL or deadline."""
        return self._expire_locked_leases(time.monotonic())

    # --------------------------------------------------------------- internal
    def _job_tag(self) -> dict:
        """Job label merged into telemetry events (empty for one-shot grids)."""
        return {"job": self.job} if self.job is not None else {}

    def _touch(self, worker_id: str, now: float) -> None:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise ShardProtocolError(f"unknown worker id '{worker_id}'")
        worker["last_seen"] = now

    def _requeue_or_fail(
        self, cell: _Cell, verdict: tuple[str, str], now: float
    ) -> Optional[SweepFailure]:
        """Called with the lock held; returns the failure when it settles."""
        cell.lease_id = None
        cell.worker_id = None
        if cell.attempts <= self.retries:
            logger.warning(
                "shard: cell %s attempt %d failed (%s); requeueing",
                cell.task.name, cell.attempts, verdict[1],
            )
            cell.ready_at = now + self.backoff(cell.attempts)
            cell.status = "pending"
            self._queue.append(cell.index)
            self.metrics["requeued"] += 1
            return None
        failure = SweepFailure(
            task=cell.task, kind=verdict[0], error=verdict[1],
            attempts=cell.attempts, duration_s=cell.spent_s,
        )
        cell.status = "settled"
        self.failures[cell.index] = failure
        self.metrics["failed"] += 1
        return failure

    def _expire_locked_leases(self, now: float) -> int:
        settled: list[tuple[int, SweepFailure]] = []
        events: list[tuple[str, dict]] = []
        expired = 0
        with self._lock:
            for cell in self._cells.values():
                if cell.status != "leased":
                    continue
                if cell.deadline_at is not None and now > cell.deadline_at:
                    cell.spent_s += now - cell.lease_started
                    verdict = (
                        "timeout",
                        f"exceeded the {cell.timeout_s:g}s per-cell timeout "
                        f"on worker {cell.worker_id}",
                    )
                    self.metrics["revoked"] += 1
                    events.append(("shard.lease.revoked", {
                        "uid": cell.task.uid, "worker": cell.worker_id,
                        "lease": cell.lease_id, **self._job_tag(),
                    }))
                elif now > cell.expires_at:
                    cell.spent_s += now - cell.lease_started
                    verdict = (
                        "crash",
                        f"worker {cell.worker_id} stopped heartbeating "
                        f"(lease expired after {self.lease_ttl_s:g}s)",
                    )
                    self.metrics["expired"] += 1
                    events.append(("shard.lease.expired", {
                        "uid": cell.task.uid, "worker": cell.worker_id,
                        "lease": cell.lease_id, **self._job_tag(),
                    }))
                else:
                    continue
                expired += 1
                failure = self._requeue_or_fail(cell, verdict, now)
                if failure is not None:
                    settled.append((cell.index, failure))
        for index, failure in settled:
            if self.on_failure is not None:
                self.on_failure(index, failure)
        for name, attrs in events:
            telemetry.event(name, **attrs)
        return expired


def parse_report(payload: Mapping) -> tuple[str, str, str, dict]:
    """Validate one ``/v1/report`` body into ``LeaseBoard.report`` arguments.

    Returns ``(worker_id, lease_id, uid, kwargs)`` where ``kwargs`` carries
    either a parsed ``outcome`` or an ``error`` string plus ``duration_s``.
    Shared by the one-shot coordinator and the multi-job service so both
    enforce identical wire validation.
    """
    worker_id = require(payload, "worker_id", str)
    lease_id = require(payload, "lease_id", str)
    uid = require(payload, "uid", str)
    status = require(payload, "status", str)
    duration_s = float(payload.get("duration_s", 0.0))
    if status == "ok":
        wire = require(payload, "outcome", dict)
        try:
            outcome = outcome_from_wire(wire)
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardProtocolError(f"malformed outcome payload: {exc}") from exc
        if outcome.task.uid != uid:
            raise ShardProtocolError(
                f"outcome uid '{outcome.task.uid}' does not match report uid '{uid}'"
            )
        return worker_id, lease_id, uid, {"outcome": outcome, "duration_s": duration_s}
    if status == "error":
        error = str(payload.get("error") or "unspecified worker error")
        return worker_id, lease_id, uid, {"error": error, "duration_s": duration_s}
    raise ShardProtocolError(f"unknown report status '{status}'")


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """One HTTP request against the coordinator's lease board."""

    # Set by ShardCoordinator when the server is built.
    coordinator: "ShardCoordinator"

    server_version = "repro-shard"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("shard http: " + format, *args)

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardProtocolError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ShardProtocolError("request body must be a JSON object")
        return payload

    def _authorized(self) -> bool:
        """Shared-secret gate for mutating routes; replies 401 on failure."""
        expected = getattr(self.coordinator, "token", None)
        if token_matches(expected, self.headers.get(AUTH_HEADER)):
            return True
        self._reply({"error": f"missing or invalid {AUTH_HEADER} header"},
                    status=401)
        return False

    # Route tables — subclasses (the service coordinator's handler) extend
    # these; a ``None`` return means "no such route" and yields a 404.
    def _handle_get(self, route: str) -> Optional[dict]:
        if route == "/v1/status":
            return self.coordinator.status()
        if route == "/v1/metrics":
            return self.coordinator.metrics()
        return None

    def _handle_post(self, route: str, payload: dict) -> Optional[dict]:
        if route == "/v1/register":
            return self.coordinator.handle_register(payload)
        if route == "/v1/lease":
            return self.coordinator.handle_lease(payload)
        if route == "/v1/report":
            return self.coordinator.handle_report(payload)
        if route == "/v1/heartbeat":
            return self.coordinator.handle_heartbeat(payload)
        if route == "/v1/cache/pull":
            return self.coordinator.handle_cache_pull(payload)
        if route == "/v1/cache/push":
            return self.coordinator.handle_cache_push(payload)
        return None

    def _handle_delete(self, route: str) -> Optional[dict]:
        return None

    def _dispatch(self, handler: Callable[[], Optional[dict]]) -> None:
        try:
            reply = handler()
            if reply is None:
                self._reply({"error": f"unknown endpoint {self.path}"}, status=404)
            else:
                self._reply(reply)
        except ShardProtocolError as exc:
            self._reply({"error": str(exc)}, status=400)
        except Exception as exc:  # noqa: BLE001 - one bad request must not kill the server
            logger.exception("shard: unhandled error serving %s", self.path)
            self._reply({"error": f"{type(exc).__name__}: {exc}"}, status=500)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(lambda: self._handle_get(self.path.rstrip("/")))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if not self._authorized():
            return
        self._dispatch(lambda: self._handle_post(self.path.rstrip("/"),
                                                 self._read_body()))

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        if not self._authorized():
            return
        self._dispatch(lambda: self._handle_delete(self.path.rstrip("/")))


class ShardCoordinator:
    """HTTP front-end over a :class:`LeaseBoard` plus the shipped artifacts.

    Constructed per run by :class:`repro.shard.CoordinatorTransport` (or
    directly in tests).  ``serve_until_done`` owns the listening socket;
    lease expiry is evaluated on a fixed tick *and* lazily on every lease
    / heartbeat, so a fleet of busy workers cannot starve the reaper.
    """

    def __init__(
        self,
        board: LeaseBoard,
        prepared: Mapping[str, PreparedTarget],
        prep_keys: Mapping[int, Optional[str]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        poll_s: float = DEFAULT_POLL_S,
        token: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.board = board
        self.prepared = dict(prepared)
        self.prep_keys = dict(prep_keys)
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.token = token or None
        # Estimator-cache exchange hub: workers pull this directory's records
        # in bulk after registering and push back what they compute.
        self.cache_dir = cache_dir
        self._prepared_wire = {
            key: prepared_to_wire(artifact) for key, artifact in self.prepared.items()
        }
        handler = type("BoundCoordinatorHandler", (_CoordinatorHandler,),
                       {"coordinator": self})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True

    # ---------------------------------------------------------------- address
    @property
    def address(self) -> tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # --------------------------------------------------------------- handlers
    def status(self) -> dict:
        counts = self.board.counts()
        counts["version"] = PROTOCOL_VERSION
        return counts

    def metrics(self) -> dict:
        """`/v1/metrics`: lease counters, per-worker stats, telemetry snapshot.

        The lease counters and worker stats are always on; the ``telemetry``
        key is ``None`` unless the coordinator process runs with telemetry
        enabled (``--telemetry`` / ``REPRO_TELEMETRY=1``).
        """
        snap = telemetry.snapshot()
        return {
            "version": PROTOCOL_VERSION,
            "counts": self.board.counts(),
            "lease_metrics": self.board.metrics_counts(),
            "workers": self.board.worker_stats(),
            "telemetry": snap.as_dict() if snap is not None else None,
        }

    def handle_register(self, payload: Mapping) -> dict:
        version = payload.get("version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ShardProtocolError(
                f"worker speaks protocol v{version}, coordinator is v{PROTOCOL_VERSION}"
            )
        name = str(payload.get("name") or "worker")
        return {
            "worker_id": self.board.register(name),
            "lease_ttl_s": self.board.lease_ttl_s,
            "heartbeat_s": self.heartbeat_s,
            "poll_s": self.poll_s,
            "grid_size": self.board.counts()["cells"],
            "cache": self.cache_dir is not None,
        }

    def handle_lease(self, payload: Mapping) -> dict:
        worker_id = require(payload, "worker_id", str)
        slots = int(payload.get("slots", 1))
        known = {str(key) for key in payload.get("known_preps", [])}
        cells = self.board.lease(worker_id, slots)
        prepared: dict[str, dict] = {}
        wire_cells = []
        for cell in cells:
            prep_key = self.prep_keys.get(cell.index)
            if prep_key is not None and prep_key not in known:
                prepared[prep_key] = self._prepared_wire[prep_key]
            wire_cells.append({
                "lease_id": cell.lease_id,
                "uid": cell.task.uid,
                "task": task_to_wire(cell.task),
                "prep": prep_key,
                "timeout_s": cell.timeout_s,
                "job": self.board.job,
            })
        return {
            "cells": wire_cells,
            "prepared": prepared,
            "done": self.board.done,
            "retry_after_s": self.poll_s,
        }

    def handle_report(self, payload: Mapping) -> dict:
        worker_id, lease_id, uid, kwargs = parse_report(payload)
        accepted, reason = self.board.report(worker_id, lease_id, uid, **kwargs)
        return {"accepted": accepted, "reason": reason, "done": self.board.done}

    def handle_heartbeat(self, payload: Mapping) -> dict:
        worker_id = require(payload, "worker_id", str)
        lease_ids = [str(l) for l in payload.get("lease_ids", [])]
        lost = self.board.heartbeat(worker_id, lease_ids)
        return {"ok": True, "lost": lost, "done": self.board.done}

    # ------------------------------------------------------------ cache sync
    def handle_cache_pull(self, payload: Mapping) -> dict:
        """Bulk ``DiskEvaluationCache`` export so fresh workers warm-start."""
        require(payload, "worker_id", str)
        if self.cache_dir is None:
            return {"records": [], "count": 0, "enabled": False}
        from repro.sweep.disk_cache import read_cache_records

        namespaces = payload.get("namespaces")
        if namespaces is not None and not isinstance(namespaces, list):
            raise ShardProtocolError("'namespaces' must be a list when present")
        records = read_cache_records(self.cache_dir, namespaces=namespaces)
        return {"records": records, "count": len(records), "enabled": True}

    def handle_cache_push(self, payload: Mapping) -> dict:
        """Merge worker-computed estimates into the coordinator's cache."""
        require(payload, "worker_id", str)
        records = require(payload, "records", list)
        if self.cache_dir is None:
            return {"accepted": 0, "enabled": False}
        from repro.sweep.disk_cache import append_cache_records

        accepted = append_cache_records(self.cache_dir, records, shard="pushed")
        if accepted:
            telemetry.event("shard.cache.pushed", records=accepted)
        return {"accepted": accepted, "enabled": True}

    # ------------------------------------------------------------------ serve
    def serve_until_done(
        self,
        stop: Optional[threading.Event] = None,
        tick_s: float = 0.25,
        linger_s: float = 2.0,
    ) -> None:
        """Serve requests until every cell settled (or ``stop`` is set).

        After the last cell settles the server lingers for ``linger_s`` so
        polling workers observe ``done=True`` and exit cleanly instead of
        hitting a connection refusal.
        """
        thread = threading.Thread(target=self.server.serve_forever,
                                  kwargs={"poll_interval": 0.05}, daemon=True)
        thread.start()
        try:
            while not self.board.done:
                if stop is not None and stop.is_set():
                    break
                self.board.expire_leases()
                time.sleep(tick_s)
            if self.board.done and linger_s > 0:
                time.sleep(linger_s)
        finally:
            self.server.shutdown()
            thread.join(timeout=5.0)
            self.server.server_close()

    def close(self) -> None:
        self.server.server_close()
