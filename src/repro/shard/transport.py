"""Execution transports: one `SweepRunner` code path, local or distributed.

:class:`~repro.sweep.runner.SweepRunner` accepts a ``transport``: an
object whose ``execute(runner, order, preparations)`` runs the
cost-ordered pending cells and returns
``(outcomes_by_index, failures_by_index)``, streaming every settled cell
through ``runner.settle_outcome`` / ``runner.settle_failure`` so the
incremental checkpoint is written identically in every mode.  Grid
validation, shared preparation, resume, cost hints, timings and result
assembly all stay in the runner — a transport only decides *where* the
single-cell execution path (:func:`repro.sweep.runner.run_sweep_task`)
runs.

* :class:`LocalTransport` — delegates back to the runner's built-in
  process schedules; ``SweepRunner(transport=LocalTransport())`` is
  exactly ``SweepRunner()``.  Exists so callers can treat "local" and
  "distributed" uniformly.
* :class:`CoordinatorTransport` — binds the lease-based HTTP coordinator
  (:mod:`repro.shard.coordinator`) and serves the cells to remote
  :mod:`repro.shard.worker` processes instead of forking local ones.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping, Optional

from repro.shard.coordinator import LeaseBoard, ShardCoordinator
from repro.shard.protocol import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_POLL_S,
)
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.runner import (
        PreparedTarget,
        SweepFailure,
        SweepOutcome,
        SweepRunner,
    )

logger = get_logger(__name__)


class Transport(ABC):
    """Strategy object deciding where a sweep's pending cells execute."""

    @abstractmethod
    def execute(
        self,
        runner: "SweepRunner",
        order: list[int],
        preparations: Mapping[tuple, "PreparedTarget"],
    ) -> tuple[dict[int, "SweepOutcome"], dict[int, "SweepFailure"]]:
        """Run the cells listed in ``order`` (cost-sorted grid indices)."""


class LocalTransport(Transport):
    """Run cells with the runner's built-in local process schedules."""

    def execute(self, runner, order, preparations):
        if not order:
            return {}, {}
        if runner.workers == 1 and runner.timeout_s is None:
            return runner._run_serial(sorted(order), preparations)
        if runner.schedule == "chunked":
            return runner._run_chunked(sorted(order), preparations)
        return runner._run_stealing(order, preparations)


class CoordinatorTransport(Transport):
    """Serve the pending cells to remote workers over the shard protocol.

    The transport owns the coordinator's listening socket for the
    duration of one :meth:`SweepRunner.run` call.  Reassignment bounds,
    retry backoff and per-cell timeouts are taken from the runner — the
    PR-4 machinery applies to remote attempts exactly as to local ones.
    """

    def __init__(
        self,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        *,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        poll_s: float = DEFAULT_POLL_S,
        linger_s: float = 2.0,
        stop: Optional[threading.Event] = None,
        on_bound=None,
        token: Optional[str] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if heartbeat_s <= 0 or heartbeat_s >= lease_ttl_s:
            raise ValueError("heartbeat_s must be positive and below lease_ttl_s")
        self.bind = bind
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.linger_s = linger_s
        self.stop = stop
        self.on_bound = on_bound
        self.token = token or None
        #: The coordinator of the in-flight run (exposed for tests/status).
        self.coordinator: Optional[ShardCoordinator] = None
        #: Lease metrics / per-worker stats of the last finished run, kept
        #: after the server socket closes so the CLI can print a recap.
        self.final_counts: Optional[dict] = None
        self.final_workers: Optional[list] = None

    def execute(self, runner, order, preparations):
        if not order:
            return {}, {}
        board = LeaseBoard(
            {index: runner.tasks[index] for index in order},
            list(order),
            retries=runner.retries,
            backoff=runner._backoff_delay,
            timeouts={index: runner.effective_timeout_for(index) for index in order},
            lease_ttl_s=self.lease_ttl_s,
            on_outcome=lambda index, outcome: runner.settle_outcome(outcome),
            on_failure=lambda index, failure: runner.settle_failure(failure),
        )
        prepared_by_key: dict[str, "PreparedTarget"] = {}
        prep_keys: dict[int, Optional[str]] = {}
        for index in order:
            artifact = preparations.get(runner.tasks[index].prep_key)
            if artifact is None:
                prep_keys[index] = None
            else:
                prepared_by_key[artifact.wire_key] = artifact
                prep_keys[index] = artifact.wire_key
        coordinator = ShardCoordinator(
            board,
            prepared_by_key,
            prep_keys,
            host=self.bind[0],
            port=self.bind[1],
            heartbeat_s=self.heartbeat_s,
            poll_s=self.poll_s,
            token=self.token,
            # The run's cache dir doubles as the cache-exchange hub: fresh
            # workers pull it in bulk and push back what they compute.
            cache_dir=runner.cache_dir,
        )
        self.coordinator = coordinator
        logger.info(
            "shard: coordinator serving %d cell(s) on %s", len(order), coordinator.url
        )
        if self.on_bound is not None:
            self.on_bound(coordinator)
        try:
            coordinator.serve_until_done(stop=self.stop, linger_s=self.linger_s)
        finally:
            self.final_counts = board.metrics_counts()
            self.final_workers = board.worker_stats()
            self.coordinator = None
        return dict(board.outcomes), dict(board.failures)
