"""Cross-machine distributed sweep: lease-based coordinator/worker tier.

``repro.shard`` scales the sweep grid past one machine with nothing but
the standard library: a coordinator (``http.server``) owns the grid and
leases cells to workers (``urllib``), ships each worker the serialized
per-device :class:`~repro.sweep.runner.PreparedTarget` for its cells,
and streams every settled :class:`~repro.sweep.runner.SweepOutcome` /
``SweepFailure`` into the exact same fsynced ``_checkpoint.jsonl`` a
local sweep writes — so ``--resume``, :meth:`SweepResult.load`,
``compare`` and ``compare --diff`` treat distributed and local runs
identically, and the merged result's journals are byte-identical to a
single-machine ``workers=1`` run of the same grid and seed.

Dead or stalled workers are handled with heartbeats and lease expiry:
an expired lease requeues its cell (bounded per-cell reassignment with
the PR-4 retry/backoff/cost-hint machinery), and duplicate completions
are resolved deterministically by task uid — first settled record wins.

Quickstart (two terminals)::

    # terminal 1 — the coordinator owns the grid and the checkpoint
    repro-codesign shard coordinator --bind 0.0.0.0:8765 \
        --devices pynq-z1,ultra96 --strategies scd,random \
        --fps 20 30 --cache-dir .sweep-cache --report sweep.json

    # terminal 2..N — workers on any machine that can reach it
    repro-codesign shard worker --connect coordinator-host:8765 --workers 4

Programmatically the distributed tier is one argument::

    from repro.shard import CoordinatorTransport
    from repro.sweep import SweepRunner, build_grid

    tasks = build_grid("pynq-z1,ultra96", "scd,random", [20.0, 30.0])
    result = SweepRunner(
        tasks, cache_dir=".sweep-cache",
        transport=CoordinatorTransport(bind=("0.0.0.0", 8765)),
    ).run()
"""

from repro.shard.coordinator import LeaseBoard, ShardCoordinator, parse_report
from repro.shard.protocol import (
    AUTH_HEADER,
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_POLL_S,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    SERVICE_TOKEN_ENV,
    ShardProtocolError,
    delete_json,
    failure_from_wire,
    failure_to_wire,
    get_json,
    outcome_from_wire,
    outcome_to_wire,
    parse_bind,
    post_json,
    prepared_from_wire,
    prepared_to_wire,
    resolve_token,
    task_from_wire,
    task_to_wire,
    token_matches,
)
from repro.shard.transport import CoordinatorTransport, LocalTransport, Transport
from repro.shard.worker import ShardWorker, execute_cell

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_POLL_S",
    "AUTH_HEADER",
    "SERVICE_TOKEN_ENV",
    "ShardProtocolError",
    "parse_bind",
    "parse_report",
    "post_json",
    "get_json",
    "delete_json",
    "resolve_token",
    "token_matches",
    "task_to_wire",
    "task_from_wire",
    "outcome_to_wire",
    "outcome_from_wire",
    "failure_to_wire",
    "failure_from_wire",
    "prepared_to_wire",
    "prepared_from_wire",
    "LeaseBoard",
    "ShardCoordinator",
    "Transport",
    "LocalTransport",
    "CoordinatorTransport",
    "ShardWorker",
    "execute_cell",
]
