"""Wire protocol of the cross-machine sweep shard tier.

The coordinator and its workers speak a deliberately small JSON-over-HTTP
protocol built on the standard library only (``http.server`` on the
coordinator side, ``urllib.request`` on the worker side) — a shard
deployment needs a Python interpreter and a routable TCP port, nothing
else.  Every message body is a JSON object; every payload that crosses
the wire is made of the same JSON views the sweep subsystem already
persists (``SweepTask.from_dict``, ``SweepOutcome.from_dict``,
``SweepFailure.from_dict``, ``PreparedTarget.to_wire``), so the
distributed tier introduces **no second serialization format**: what a
worker streams back is exactly what the coordinator appends to
``_checkpoint.jsonl``, and ``--resume`` / ``SweepResult.load`` /
``compare`` work on distributed runs unchanged.

Endpoints (all under ``/v1``; requests are ``POST`` with a JSON body
unless noted):

``/v1/register``
    ``{"name": ...}`` → ``{"worker_id", "lease_ttl_s", "heartbeat_s",
    "poll_s", "grid_size", "cache": bool}``.  A worker registers once and
    uses the returned id in every later call.  ``cache=True`` advertises
    the ``/v1/cache/*`` exchange below.

``/v1/lease``
    ``{"worker_id", "slots", "known_preps": [wire_key, ...]}`` →
    ``{"cells": [{"lease_id", "uid", "task", "prep", "timeout_s",
    "job"}, ...], "prepared": {wire_key: PreparedTarget.to_wire(), ...},
    "done": bool, "retry_after_s": float}``.  Cells are leased
    longest-expected-first; the serialized :class:`PreparedTarget` for a
    cell's target key ships inline exactly once per worker (the worker
    advertises the keys it already holds).  ``done=True`` tells the
    worker the whole grid has settled and it should exit.  ``job`` is the
    owning job uid under a multi-job service coordinator and ``None``
    (or absent) for a one-shot grid — workers echo it back verbatim.

``/v1/report``
    ``{"worker_id", "lease_id", "uid", "status": "ok"|"error",
    "outcome"| "error", "duration_s", "job"?}`` → ``{"accepted": bool,
    "reason": str?}``.  Duplicate completions (a lease that expired and
    was re-run elsewhere) are resolved deterministically by uid — the
    first settled record wins and later reports are acknowledged but
    dropped (``accepted=False, reason="duplicate"``), so a settled cell
    is never lost *or* double-counted.  ``job`` routes the report to the
    right job's board under a service coordinator; one-shot coordinators
    ignore it.

``/v1/heartbeat``
    ``{"worker_id", "lease_ids": [...]}`` → ``{"ok", "lost": [...]}``.
    Extends the worker's leases; a lease the coordinator already revoked
    (expired and requeued) comes back in ``lost`` so the worker can stop
    wasting cycles on it.

``/v1/cache/pull`` / ``/v1/cache/push``
    Bulk estimator-cache exchange so a fresh worker warm-starts instead
    of recomputing.  ``pull``: ``{"worker_id", "namespaces"?}`` →
    ``{"records": [...], "count", "enabled"}``.  ``push``:
    ``{"worker_id", "records": [...]}`` → ``{"accepted": int,
    "enabled"}``.  Records use the ``DiskEvaluationCache`` JSONL shape
    verbatim (``{"namespace", "key", "estimate", "ts"}``).

``/v1/status`` (GET)
    Progress counters for dashboards and tests.

A service coordinator (``repro.service``) additionally serves
``/v1/jobs`` (POST submit / GET list), ``/v1/jobs/<uid>`` (GET status /
DELETE cancel) and ``/v1/jobs/<uid>/result``; workers need no knowledge
of those routes.

Authentication: when the operator configures a shared secret (``--token``
or ``REPRO_SERVICE_TOKEN``), every mutating route (POST/DELETE) requires
the ``X-Repro-Token`` header and replies HTTP 401 otherwise.  Comparison
is constant-time (:func:`token_matches`).
"""

from __future__ import annotations

import hmac
import json
import os
import urllib.error
import urllib.request
from typing import Mapping, Optional

from repro.sweep.runner import PreparedTarget, SweepFailure, SweepOutcome, SweepTask
from repro.utils.serialization import to_jsonable

#: Protocol version; a coordinator rejects workers speaking another one.
PROTOCOL_VERSION = 1

#: Default coordinator port (unassigned by IANA, outside ephemeral range).
DEFAULT_PORT = 8765

#: Default lease time-to-live: a worker that misses heartbeats for this
#: long is presumed dead and its cells are requeued.
DEFAULT_LEASE_TTL_S = 30.0

#: Default worker heartbeat period (well under the lease TTL).
DEFAULT_HEARTBEAT_S = 5.0

#: Default idle-poll period suggested to workers when no cell is ready.
DEFAULT_POLL_S = 0.5

#: Header carrying the shared secret on mutating requests.
AUTH_HEADER = "X-Repro-Token"

#: Environment variable consulted when no ``--token`` flag is given.
SERVICE_TOKEN_ENV = "REPRO_SERVICE_TOKEN"


class ShardProtocolError(RuntimeError):
    """A malformed or unexpected message crossed the shard wire."""


def resolve_token(token: Optional[str]) -> Optional[str]:
    """Effective shared secret: the explicit flag, else ``$REPRO_SERVICE_TOKEN``.

    Empty strings count as "no token" so ``--token ''`` disables auth
    explicitly even when the environment variable is set.
    """
    if token is not None:
        return token or None
    return os.environ.get(SERVICE_TOKEN_ENV) or None


def token_matches(expected: Optional[str], provided: Optional[str]) -> bool:
    """Constant-time shared-secret check.

    No configured secret accepts everything; a configured secret requires
    an exact (timing-safe) match — a missing header never matches.
    """
    if not expected:
        return True
    if not provided:
        return False
    return hmac.compare_digest(expected.encode("utf-8"), provided.encode("utf-8"))


# ---------------------------------------------------------------- wire views
def task_to_wire(task: SweepTask) -> dict:
    """JSON view of one grid cell (the checkpoint's task encoding)."""
    return to_jsonable(task)


def task_from_wire(payload: Mapping) -> SweepTask:
    return SweepTask.from_dict(payload)


def outcome_to_wire(outcome: SweepOutcome) -> dict:
    return to_jsonable(outcome)


def outcome_from_wire(payload: Mapping) -> SweepOutcome:
    return SweepOutcome.from_dict(payload)


def failure_to_wire(failure: SweepFailure) -> dict:
    return failure.as_dict()


def failure_from_wire(payload: Mapping) -> SweepFailure:
    return SweepFailure.from_dict(payload)


def prepared_to_wire(prepared: PreparedTarget) -> dict:
    return prepared.to_wire()


def prepared_from_wire(payload: Mapping) -> PreparedTarget:
    # Backend-tagged: the payload's "backend" key selects the artifact
    # shape (fpga payloads require coefficients, fit-free ones ship none);
    # pre-backend payloads carry no tag and default to fpga.
    return PreparedTarget.from_wire(payload)


# -------------------------------------------------------------- HTTP client
def _fetch_json(url: str, request, timeout_s: float) -> dict:
    """One request/response exchange under the shard error contract.

    Transport failures, non-2xx statuses and non-JSON / non-object replies
    all surface as :class:`ShardProtocolError`, so callers handle exactly
    one exception type.  ``urllib`` only — no third-party HTTP stack.
    """
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            raw = response.read()
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = exc.read().decode("utf-8", "replace")[:200]
        except Exception:  # pragma: no cover - error body unavailable
            pass
        raise ShardProtocolError(
            f"{url} answered HTTP {exc.code}: {detail or exc.reason}"
        ) from exc
    except (urllib.error.URLError, OSError) as exc:
        raise ShardProtocolError(f"could not reach {url}: {exc}") from exc
    try:
        reply = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardProtocolError(f"{url} returned a non-JSON reply") from exc
    if not isinstance(reply, dict):
        raise ShardProtocolError(f"{url} returned a non-object reply")
    return reply


def post_json(
    base_url: str,
    path: str,
    payload: Mapping,
    timeout_s: float = 10.0,
    token: Optional[str] = None,
) -> dict:
    """POST ``payload`` as JSON to ``base_url + path``; return the JSON reply."""
    url = base_url.rstrip("/") + path
    headers = {"Content-Type": "application/json"}
    if token:
        headers[AUTH_HEADER] = token
    request = urllib.request.Request(
        url,
        data=json.dumps(to_jsonable(payload)).encode("utf-8"),
        headers=headers,
        method="POST",
    )
    return _fetch_json(url, request, timeout_s)


def get_json(
    base_url: str,
    path: str,
    timeout_s: float = 10.0,
    token: Optional[str] = None,
) -> dict:
    """GET ``base_url + path``; return the JSON reply (same error contract)."""
    url = base_url.rstrip("/") + path
    headers = {AUTH_HEADER: token} if token else {}
    request = urllib.request.Request(url, headers=headers, method="GET")
    return _fetch_json(url, request, timeout_s)


def delete_json(
    base_url: str,
    path: str,
    timeout_s: float = 10.0,
    token: Optional[str] = None,
) -> dict:
    """DELETE ``base_url + path``; return the JSON reply (same error contract)."""
    url = base_url.rstrip("/") + path
    headers = {AUTH_HEADER: token} if token else {}
    request = urllib.request.Request(url, headers=headers, method="DELETE")
    return _fetch_json(url, request, timeout_s)


def parse_bind(spec: str, default_port: int = DEFAULT_PORT) -> tuple[str, int]:
    """Parse a ``host:port`` / ``host`` / ``:port`` bind spec."""
    spec = (spec or "").strip()
    if not spec:
        return ("127.0.0.1", default_port)
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        return (spec, default_port)
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in bind spec '{spec}'") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in bind spec '{spec}'")
    return (host, port)


def require(payload: Mapping, key: str, kind: Optional[type] = None):
    """Fetch a required message field, raising the protocol error on absence."""
    if key not in payload:
        raise ShardProtocolError(f"message is missing required field '{key}'")
    value = payload[key]
    if kind is not None and not isinstance(value, kind):
        raise ShardProtocolError(
            f"message field '{key}' must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value
