"""Reproduction of "FPGA/DNN Co-Design: An Efficient Design Methodology for
IoT Intelligence on the Edge" (Hao, Zhang et al., DAC 2019).

The package is organised bottom-up:

* :mod:`repro.nn` — pure-numpy DNN framework (layers, training, quantization),
* :mod:`repro.detection` — DAC-SDC-style object-detection task substrate,
* :mod:`repro.hw` — FPGA accelerator substrate: IP library, Tile-Arch
  template, tile-pipeline simulator, analytical models, Auto-HLS code
  generation, power model,
* :mod:`repro.gpu` — embedded-GPU baseline models,
* :mod:`repro.core` — the co-design methodology: Bundle-Arch, Auto-DNN
  (bundle evaluation + SCD search), Auto-HLS engine, and the three-step
  co-design flow,
* :mod:`repro.baselines` — contest-entry baselines and the top-down flow,
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro import CoDesignFlow, CoDesignInputs, LatencyTarget, PYNQ_Z1

    inputs = CoDesignInputs(latency_targets=(LatencyTarget(fps=30.0),))
    result = CoDesignFlow(inputs).run()
    print(result.summary())
"""

from repro.core import (
    AutoDNN,
    AutoHLS,
    Bundle,
    BundleEvaluator,
    CoDesignFlow,
    CoDesignInputs,
    CoDesignResult,
    DNNConfig,
    LatencyTarget,
    ResourceConstraint,
    SCDUnit,
    default_bundle_catalog,
)
from repro.detection import DAC_SDC_TASK, DetectionTask, SyntheticDetectionDataset
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.hw import PYNQ_Z1, FPGADevice, TileArchAccelerator, get_device

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CoDesignFlow",
    "CoDesignInputs",
    "CoDesignResult",
    "AutoDNN",
    "AutoHLS",
    "Bundle",
    "BundleEvaluator",
    "DNNConfig",
    "LatencyTarget",
    "ResourceConstraint",
    "SCDUnit",
    "default_bundle_catalog",
    "DetectionTask",
    "DAC_SDC_TASK",
    "SyntheticDetectionDataset",
    "SurrogateAccuracyModel",
    "FPGADevice",
    "PYNQ_Z1",
    "get_device",
    "TileArchAccelerator",
]
