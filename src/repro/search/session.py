"""Search-session journal: every evaluated config / estimate, archivable.

A :class:`SearchSession` records each evaluation a strategy performs (config
key, latency, resources, band / feasibility verdicts, whether the result came
from the cache) plus every accepted candidate.  Sessions serialise through
:mod:`repro.utils.serialization`, so they can be saved, diffed across runs
and compared across strategies.  Nothing time- or machine-dependent is
recorded: a same-seed, single-worker run produces a bit-identical journal on
every invocation.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.search.cache import CacheStats
from repro.utils.serialization import dump_json, load_json

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.hw.analytical import PerformanceEstimate


@dataclass(frozen=True)
class EvaluationRecord:
    """One estimator request made by a strategy."""

    index: int
    strategy: str
    config: str
    latency_ms: float
    lut: float
    ff: float
    dsp: float
    bram: float
    within_band: bool
    feasible: bool
    cached: bool


@dataclass(frozen=True)
class CandidateRecord:
    """One accepted candidate (in band, feasible, first of its kind)."""

    index: int
    strategy: str
    config: str
    latency_ms: float


class SearchSession:
    """Append-only journal of one exploration run (or several, compared)."""

    def __init__(self, name: str = "search", metadata: Optional[dict] = None) -> None:
        self.name = name
        self.metadata: dict = dict(metadata or {})
        self.records: list[EvaluationRecord] = []
        self.candidates: list[CandidateRecord] = []
        self.cache_stats: Optional[CacheStats] = None

    # --------------------------------------------------------------- recording
    def record_evaluation(
        self,
        strategy: str,
        config_key: str,
        estimate: "PerformanceEstimate",
        within_band: bool,
        feasible: bool,
        cached: bool,
    ) -> EvaluationRecord:
        record = EvaluationRecord(
            index=len(self.records),
            strategy=strategy,
            config=config_key,
            latency_ms=float(estimate.latency_ms),
            lut=float(estimate.resources.lut),
            ff=float(estimate.resources.ff),
            dsp=float(estimate.resources.dsp),
            bram=float(estimate.resources.bram),
            within_band=bool(within_band),
            feasible=bool(feasible),
            cached=bool(cached),
        )
        self.records.append(record)
        return record

    def record_candidate(self, strategy: str, config_key: str, latency_ms: float) -> CandidateRecord:
        record = CandidateRecord(
            index=len(self.candidates),
            strategy=strategy,
            config=config_key,
            latency_ms=float(latency_ms),
        )
        self.candidates.append(record)
        return record

    def attach_cache_stats(self, stats: CacheStats) -> None:
        self.cache_stats = stats

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self.records)

    def strategies(self) -> list[str]:
        """Strategy names appearing in the journal, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.strategy, None)
        return list(seen)

    def summary(self) -> str:
        lines = [
            f"SearchSession '{self.name}': {len(self.records)} evaluations, "
            f"{len(self.candidates)} candidates",
        ]
        for strategy in self.strategies():
            evals = [r for r in self.records if r.strategy == strategy]
            cands = [c for c in self.candidates if c.strategy == strategy]
            cached = sum(1 for r in evals if r.cached)
            lines.append(
                f"  {strategy}: {len(evals)} evaluations "
                f"({cached} cached), {len(cands)} candidates"
            )
        if self.cache_stats is not None:
            lines.append(f"  {self.cache_stats.summary()}")
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization
    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "metadata": dict(self.metadata),
            "records": list(self.records),
            "candidates": list(self.candidates),
            "cache_stats": self.cache_stats,
        }

    def save(self, path) -> pathlib.Path:
        """Write the journal as deterministic (sorted-key) JSON."""
        return dump_json(self.as_dict(), path)

    @classmethod
    def load(cls, path) -> "SearchSession":
        """Reload a journal written by :meth:`save`."""
        payload = load_json(path)
        session = cls(name=payload.get("name", "search"), metadata=payload.get("metadata"))
        for raw in payload.get("records", []):
            session.records.append(EvaluationRecord(**_strip_type(raw)))
        for raw in payload.get("candidates", []):
            session.candidates.append(CandidateRecord(**_strip_type(raw)))
        raw_stats = payload.get("cache_stats")
        if raw_stats is not None:
            session.cache_stats = CacheStats(**_strip_type(raw_stats))
        return session


def _strip_type(payload: dict) -> dict:
    """Drop the ``__type__`` tag :func:`to_jsonable` adds to dataclasses."""
    return {key: value for key, value in payload.items() if key != "__type__"}
