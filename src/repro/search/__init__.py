"""Pluggable parallel exploration engine for the co-design search.

The subsystem decouples *what* is searched (the N / Pi / X design space of
Algorithm 1, evaluated by an analytical estimator) from *how* it is searched:

* :mod:`repro.search.base` — the :class:`Explorer` API and strategy registry,
* :mod:`repro.search.strategies` — the built-in ``scd`` / ``random`` /
  ``evolutionary`` / ``annealing`` strategies (loaded lazily),
* :mod:`repro.search.cache` — memoized estimator calls shared across
  strategies, targets and bundles,
* :mod:`repro.search.parallel` — batch evaluation across worker threads,
* :mod:`repro.search.session` — the archivable evaluation journal.

Quickstart::

    from repro.search import create_explorer, EvaluationCache, SearchSession

    explorer = create_explorer(
        "evolutionary",
        estimator=auto_hls.estimate,
        latency_target=target,
        resource_constraint=constraint,
        rng=2019,
        workers=4,
        session=SearchSession("demo"),
    )
    result = explorer.explore(initial_config, num_candidates=3)
"""

from repro.search.base import (
    ExplorationResult,
    Explorer,
    available_strategies,
    create_explorer,
    explorer_class,
    register_explorer,
)
from repro.search.cache import CacheStats, EvaluationCache, config_cache_key
from repro.search.parallel import ParallelEvaluator
from repro.search.session import CandidateRecord, EvaluationRecord, SearchSession

__all__ = [
    "Explorer",
    "ExplorationResult",
    "available_strategies",
    "create_explorer",
    "explorer_class",
    "register_explorer",
    "CacheStats",
    "EvaluationCache",
    "config_cache_key",
    "ParallelEvaluator",
    "SearchSession",
    "EvaluationRecord",
    "CandidateRecord",
]

_STRATEGY_EXPORTS = {
    "SCDExplorer",
    "RandomExplorer",
    "EvolutionaryExplorer",
    "AnnealingExplorer",
    "MoveBasedExplorer",
}


def __getattr__(name: str):
    # Strategy classes import repro.core.scd, so they load lazily to keep
    # repro.core -> repro.search.cache import order cycle-free.
    if name in _STRATEGY_EXPORTS:
        from repro.search import strategies

        return getattr(strategies, name)
    raise AttributeError(f"module 'repro.search' has no attribute '{name}'")
