"""Memoized evaluation cache for the exploration strategies.

Estimating a candidate DNN (building its workload, assembling the Tile-Arch
accelerator and running the analytical model) is the hot path of every search
strategy: the SCD unit alone re-estimates the *current* config on every loop
iteration plus one unit move per coordinate, and population-based strategies
revisit configurations constantly.  :class:`EvaluationCache` memoizes the
estimator on a structural key so identical configurations are estimated once
per search session.

The key builds on :meth:`DNNConfig.describe` but appends the exact
per-repetition channel-expansion and down-sampling vectors — ``describe()``
alone summarises them as "maximum N channels" and would alias distinct
configurations, which must never share a cache slot.

This module intentionally has no runtime import of :mod:`repro.core` so that
``repro.core.scd`` can depend on it without an import cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import repro.telemetry as telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.dnn_config import DNNConfig
    from repro.hw.analytical import PerformanceEstimate
    from repro.search.parallel import ParallelEvaluator


def config_cache_key(config: "DNNConfig") -> str:
    """Structural cache key: ``describe()`` plus the exact Pi / X vectors.

    The detection task is part of the key (``describe()`` omits it): the
    input resolution changes every latency, so configs from different tasks
    must never share a slot — especially in the persistent disk cache, which
    outlives a single search.
    """
    pi = ",".join(f"{factor:g}" for factor in config.channel_expansion)
    x = ",".join(str(flag) for flag in config.downsample)
    c, h, w = config.task.input_shape
    return (
        f"{config.describe()} | Pi=[{pi}] X=[{x}] stem={config.stem_channels} "
        f"task={config.task.name}@{c}x{h}x{w}"
    )


def resolve_batch_estimator(
    estimator: Callable[["DNNConfig"], "PerformanceEstimate"],
) -> Optional[Callable[[Sequence["DNNConfig"]], list]]:
    """The batched entry point of an estimator, if it offers one.

    Accepts either a callable object with an ``estimate_batch`` method (e.g.
    :class:`repro.sweep.disk_cache.DiskEvaluationCache`) or a bound method
    whose owner has one (e.g. ``auto_hls.estimate`` — the form
    :class:`repro.core.auto_dnn.AutoDNN` wires up).  Returns ``None`` for
    plain scalar estimators, in which case callers fall back to a loop.
    """
    batch = getattr(estimator, "estimate_batch", None)
    if callable(batch):
        return batch
    owner = getattr(estimator, "__self__", None)
    batch = getattr(owner, "estimate_batch", None) if owner is not None else None
    return batch if callable(batch) else None


@dataclass(frozen=True)
class CacheStats:
    """Hit / miss accounting of one :class:`EvaluationCache`."""

    hits: int
    misses: int
    size: int

    @property
    def evaluations(self) -> int:
        """Total evaluation requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0 when unused)."""
        total = self.evaluations
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate, {self.size} entries)"
        )


class EvaluationCache:
    """Thread-safe memoization of ``Estimator`` calls.

    The cache is callable, so it can be passed anywhere a plain estimator is
    expected::

        cache = EvaluationCache(auto_hls.estimate)
        scd = SCDUnit(cache, target, constraint)

    ``misses`` always equals the number of underlying estimator invocations,
    which makes the cache's effect directly measurable.
    """

    def __init__(
        self,
        estimator: Callable[["DNNConfig"], "PerformanceEstimate"],
        key_fn: Callable[["DNNConfig"], str] = config_cache_key,
    ) -> None:
        self.estimator = estimator
        self.key_fn = key_fn
        self._store: dict[str, "PerformanceEstimate"] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------- evaluation
    def __call__(self, config: "DNNConfig") -> "PerformanceEstimate":
        return self.evaluate(config)

    def evaluate(self, config: "DNNConfig") -> "PerformanceEstimate":
        return self.evaluate_with_info(config)[0]

    def evaluate_with_info(self, config: "DNNConfig") -> tuple["PerformanceEstimate", bool]:
        """Evaluate one config; returns ``(estimate, served_from_cache)``."""
        key = self.key_fn(config)
        reg = telemetry.registry()
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._hits += 1
                if reg is not None:
                    reg.counter("search.cache.hits").inc()
                return cached, True
        # Estimate outside the lock; a concurrent duplicate computation is
        # harmless because the estimator is deterministic.
        value = self.estimator(config)
        with self._lock:
            self._store[key] = value
            self._misses += 1
        if reg is not None:
            reg.counter("search.cache.misses").inc()
        return value, False

    def evaluate_batch(
        self,
        configs: Sequence["DNNConfig"],
        parallel: Optional["ParallelEvaluator"] = None,
        with_info: bool = False,
    ) -> list:
        """Evaluate a batch, estimating each *unique* missing config once.

        Missing configs are dispatched to ``parallel`` (a
        :class:`repro.search.parallel.ParallelEvaluator`) when provided, so a
        population is estimated across workers while duplicates and already
        cached members cost nothing.
        """
        keys = [self.key_fn(config) for config in configs]
        results: list = [None] * len(configs)
        cached_flags = [False] * len(configs)
        missing: dict[str, int] = {}
        batch_hits = batch_misses = 0
        with self._lock:
            for index, key in enumerate(keys):
                value = self._store.get(key)
                if value is not None:
                    results[index] = value
                    cached_flags[index] = True
                    self._hits += 1
                    batch_hits += 1
                elif key not in missing:
                    missing[key] = index
                    self._misses += 1
                    batch_misses += 1
                else:
                    # Duplicate of a miss in the same batch: estimated once.
                    self._hits += 1
                    batch_hits += 1
                    cached_flags[index] = True
        reg = telemetry.registry()
        if reg is not None:
            if batch_hits:
                reg.counter("search.cache.hits").inc(batch_hits)
            if batch_misses:
                reg.counter("search.cache.misses").inc(batch_misses)
        representatives = [configs[index] for index in missing.values()]
        if representatives:
            batch_estimate = resolve_batch_estimator(self.estimator)
            if parallel is not None and getattr(parallel, "workers", 1) > 1:
                values = parallel.map(representatives)
            elif batch_estimate is not None and len(representatives) > 1:
                # Vectorized path: one call scores the whole generation.
                # Results are bit-identical to the scalar estimator, so
                # journals and checkpoints do not depend on which path ran.
                values = batch_estimate(representatives)
            else:
                values = [self.estimator(config) for config in representatives]
            with self._lock:
                for key, value in zip(missing, values):
                    self._store[key] = value
        with self._lock:
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = self._store[key]
        if with_info:
            return list(zip(results, cached_flags))
        return results

    # ------------------------------------------------------------ bulk access
    def get_many(self, configs: Sequence["DNNConfig"]) -> list:
        """Look up many configs at once; ``None`` marks the misses.

        A pure read: found entries count as hits, but absent entries do not
        bump ``misses`` — that counter stays equal to the number of estimator
        invocations, which this method never performs.
        """
        reg = telemetry.registry()
        results: list = []
        found = 0
        with self._lock:
            for config in configs:
                value = self._store.get(self.key_fn(config))
                if value is not None:
                    self._hits += 1
                    found += 1
                results.append(value)
        if reg is not None:
            if found:
                reg.counter("search.cache.hits").inc(found)
        return results

    def put_many(
        self, configs: Sequence["DNNConfig"], estimates: Sequence["PerformanceEstimate"]
    ) -> None:
        """Insert precomputed estimates (e.g. from a batched estimator).

        Counter-neutral: the estimates were produced outside the cache, so
        neither hits nor misses move.
        """
        if len(configs) != len(estimates):
            raise ValueError("configs and estimates must have the same length")
        with self._lock:
            for config, value in zip(configs, estimates):
                self._store[self.key_fn(config)] = value

    # ------------------------------------------------------------ bookkeeping
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, size=len(self._store))

    def clear(self) -> None:
        """Drop all entries and reset the hit / miss counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, config: "DNNConfig") -> bool:
        return self.key_fn(config) in self._store
