"""Built-in exploration strategies over the SCD move set.

All strategies perturb candidates exclusively through the ``N`` / ``Pi``
/ ``X`` coordinate moves of :mod:`repro.core.scd` (Algorithm 1's move set),
so their results live in exactly the same design space and are directly
comparable:

* ``scd`` — adapter around the paper's :class:`~repro.core.scd.SCDUnit`,
* ``random`` — randomized multi-start walk, batch-evaluated,
* ``evolutionary`` — truncation-selection evolution of a population,
* ``regularized-evolution`` — aging evolution (tournament parent
  selection, oldest member dies each cycle),
* ``annealing`` — simulated annealing on the latency-gap energy.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.core.dnn_config import DNNConfig
from repro.core.scd import MOVE_NAMES, SCDUnit, apply_move
from repro.hw.analytical import PerformanceEstimate
from repro.search.base import Explorer, register_explorer

#: Energy penalty (ms) for configurations that violate the resource budget.
INFEASIBLE_PENALTY_MS = 1_000.0


class MoveBasedExplorer(Explorer):
    """Shared random-move machinery for the non-SCD strategies."""

    def random_move(self, config: DNNConfig) -> DNNConfig:
        """One random unit-ish move along a random coordinate."""
        name = MOVE_NAMES[int(self.rng.integers(0, len(MOVE_NAMES)))]
        direction = 1 if self.rng.random() < 0.5 else -1
        steps = 1 + int(self.rng.integers(0, 2))
        moved = apply_move(name, config, direction, steps, self.max_repetitions)
        return moved if moved is not None else config

    def random_walk(self, config: DNNConfig, max_moves: int = 3) -> DNNConfig:
        """Apply 1..max_moves random moves in sequence."""
        for _ in range(1 + int(self.rng.integers(0, max_moves))):
            config = self.random_move(config)
        return config

    def energy(self, estimate: PerformanceEstimate) -> float:
        """Distance to the latency target, heavily penalising infeasibility."""
        gap = abs(self.latency_target.latency_ms - estimate.latency_ms)
        if not self.feasible(estimate):
            gap += INFEASIBLE_PENALTY_MS
        return gap


@register_explorer("scd")
class SCDExplorer(Explorer):
    """Adapter running the paper's SCD unit behind the Explorer API.

    The wrapped :class:`SCDUnit` receives :meth:`Explorer.evaluate` as its
    estimator (so every request is memoized and journaled) and runs with its
    own internal cache disabled to avoid double caching.  The per-iteration
    unit-move probes go through :meth:`Explorer.score_generation`, so
    vectorized estimators (``estimate_batch``) score all coordinates in one
    call — journaled in input order, bit-identical to the scalar path.
    """

    def _explore(self, initial: DNNConfig, num_candidates: int) -> int:
        unit = SCDUnit(
            estimator=self.evaluate,
            latency_target=self.latency_target,
            resource_constraint=self.resource_constraint,
            max_repetitions=self.max_repetitions,
            max_iterations=self.max_iterations,
            rng=self.rng,
            cache=False,
            batch_scorer=self.score_generation,
        )
        result = unit.search(initial, num_candidates=num_candidates)
        for config, estimate in zip(result.candidates, result.estimates):
            self.consider(config, estimate)
        return result.iterations


@register_explorer("random")
class RandomExplorer(MoveBasedExplorer):
    """Randomized multi-start exploration.

    Batches of random walks start from a pool seeded with the initial config;
    accepted candidates and the per-batch config closest to the target join
    the pool, so the walk drifts toward the band while staying stochastic.
    Batches are evaluated through the worker pool.
    """

    def __init__(self, *args, batch_size: int = 8, pool_size: int = 12, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if batch_size < 1 or pool_size < 1:
            raise ValueError("batch_size and pool_size must be >= 1")
        self.batch_size = batch_size
        self.pool_size = pool_size

    def _explore(self, initial: DNNConfig, num_candidates: int) -> int:
        estimate = self.evaluate(initial)
        self.consider(initial, estimate)
        pool: list[DNNConfig] = [initial]
        rounds = 0
        while len(self._candidates) < num_candidates and self.budget_left > 0:
            rounds += 1
            batch = []
            for _ in range(min(self.batch_size, self.budget_left)):
                base = pool[int(self.rng.integers(0, len(pool)))]
                batch.append(self.random_walk(base))
            estimates = self.score_generation(batch)
            best: Optional[tuple[DNNConfig, float]] = None
            for config, est in zip(batch, estimates):
                if self.consider(config, est):
                    pool.append(config)
                energy = self.energy(est)
                if best is None or energy < best[1]:
                    best = (config, energy)
            if best is not None:
                pool.append(best[0])
            if len(pool) > self.pool_size:
                pool = pool[-self.pool_size:]
        return rounds


@register_explorer("evolutionary")
class EvolutionaryExplorer(MoveBasedExplorer):
    """Truncation-selection evolution over the SCD move set.

    Each generation is batch-evaluated (through the cache and worker pool),
    the lowest-energy members become parents, and children are mutated
    parents.  Elitism keeps the parents in the next generation.
    """

    def __init__(
        self, *args, population_size: int = 12, num_parents: int = 4, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= num_parents < population_size:
            raise ValueError("num_parents must be in [1, population_size)")
        self.population_size = population_size
        self.num_parents = num_parents

    def _explore(self, initial: DNNConfig, num_candidates: int) -> int:
        population = [initial] + [
            self.random_walk(initial, max_moves=2)
            for _ in range(self.population_size - 1)
        ]
        generations = 0
        while len(self._candidates) < num_candidates and self.budget_left > 0:
            generations += 1
            population = population[: max(self.budget_left, 1)]
            estimates = self.score_generation(population)
            scored = sorted(
                zip(population, estimates), key=lambda pair: self.energy(pair[1])
            )
            for config, estimate in scored:
                self.consider(config, estimate)
            parents = [config for config, _ in scored[: self.num_parents]]
            next_population = list(parents)
            while len(next_population) < self.population_size:
                parent = parents[int(self.rng.integers(0, len(parents)))]
                next_population.append(self.random_walk(parent, max_moves=2))
            population = next_population
        return generations


@register_explorer("regularized-evolution")
class RegularizedEvolutionExplorer(MoveBasedExplorer):
    """Aging evolution (regularized evolution) over the SCD move set.

    The population is a FIFO queue of bounded size.  Each cycle samples a
    small tournament uniformly from the population, mutates the
    lowest-energy sampled member with one random move, evaluates the
    child, appends it and retires the *oldest* member — dying of age, not
    of fitness.  The aging regularization (Real et al., AAAI'19,
    "Regularized Evolution for Image Classifier Architecture Search")
    prevents an early lucky candidate from dominating the population
    forever and keeps exploration moving even on flat energy plateaus.

    The seed population is batch-evaluated through the worker pool; each
    subsequent cycle evaluates exactly one child, so the evaluation
    budget translates directly into evolution cycles.
    """

    def __init__(
        self, *args, population_size: int = 12, sample_size: int = 4, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= sample_size <= population_size:
            raise ValueError("sample_size must be in [1, population_size]")
        self.population_size = population_size
        self.sample_size = sample_size

    def _explore(self, initial: DNNConfig, num_candidates: int) -> int:
        seeds = [initial] + [
            self.random_walk(initial, max_moves=2)
            for _ in range(min(self.population_size, max(self.budget_left, 1)) - 1)
        ]
        estimates = self.score_generation(seeds)
        population: deque[tuple[DNNConfig, float]] = deque(maxlen=self.population_size)
        for config, estimate in zip(seeds, estimates):
            self.consider(config, estimate)
            population.append((config, self.energy(estimate)))
        cycles = 0
        while len(self._candidates) < num_candidates and self.budget_left > 0:
            cycles += 1
            draws = min(self.sample_size, len(population))
            sampled = [
                population[int(self.rng.integers(0, len(population)))]
                for _ in range(draws)
            ]
            parent = min(sampled, key=lambda pair: pair[1])[0]
            child = self.random_move(parent)
            estimate = self.evaluate(child)
            self.consider(child, estimate)
            # deque(maxlen=...) retires the oldest member on append: aging.
            population.append((child, self.energy(estimate)))
        return cycles


@register_explorer("annealing")
class AnnealingExplorer(MoveBasedExplorer):
    """Simulated annealing on the latency-gap energy.

    Proposals are random moves; a worse proposal is accepted with probability
    ``exp(-dE / T)`` and the temperature decays geometrically.  Accepted
    in-band candidates restart the walk from a perturbed copy (mirroring the
    SCD unit's diversification step).
    """

    def __init__(
        self,
        *args,
        initial_temperature: Optional[float] = None,
        cooling: float = 0.95,
        min_temperature: float = 1e-3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if min_temperature <= 0.0:
            raise ValueError("min_temperature must be positive")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.min_temperature = min_temperature

    def _explore(self, initial: DNNConfig, num_candidates: int) -> int:
        temperature = self.initial_temperature
        if temperature is None:
            temperature = 4.0 * self.latency_target.tolerance_ms
        # A zero-tolerance band (or an explicit 0) would make the Metropolis
        # step divide by zero; the floor also keeps cooling well-defined.
        temperature = max(temperature, self.min_temperature)
        current = initial
        current_estimate = self.evaluate(current)
        self.consider(current, current_estimate)
        current_energy = self.energy(current_estimate)
        iterations = 0
        while len(self._candidates) < num_candidates and self.budget_left > 0:
            iterations += 1
            proposal = self.random_move(current)
            proposal_estimate = self.evaluate(proposal)
            proposal_energy = self.energy(proposal_estimate)
            if self.consider(proposal, proposal_estimate):
                # Diversify away from an accepted candidate; re-evaluate the
                # perturbed config so the Metropolis baseline matches the
                # actual current state.
                current = self.random_move(proposal)
                if self.budget_left <= 0:
                    break
                current_estimate = self.evaluate(current)
                self.consider(current, current_estimate)
                current_energy = self.energy(current_estimate)
                temperature = max(temperature * self.cooling, self.min_temperature)
                continue
            delta = proposal_energy - current_energy
            if delta <= 0 or self.rng.random() < math.exp(-delta / temperature):
                current = proposal
                current_energy = proposal_energy
            temperature = max(temperature * self.cooling, self.min_temperature)
        return iterations
