"""Explorer base API and the pluggable strategy registry.

An :class:`Explorer` searches the DNN design space for candidates whose
estimated latency falls inside a target band and whose resources fit the
device — the contract of the paper's SCD unit — but the *policy* that walks
the space is pluggable: strategies register under a name (``scd``,
``random``, ``evolutionary``, ``annealing``) and are resolved by
:func:`create_explorer`, so switching strategy is a config choice, not a
rewrite.

Every explorer shares the same infrastructure: a memoized
:class:`~repro.search.cache.EvaluationCache`, an optional
:class:`~repro.search.parallel.ParallelEvaluator` for population batches,
and an optional :class:`~repro.search.session.SearchSession` journal that
records every evaluation.

This module has no runtime import of :mod:`repro.core`; the built-in
strategies (which *do* import the SCD move set) are loaded lazily on first
registry lookup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar, Optional

from repro.search.cache import EvaluationCache
from repro.search.parallel import ParallelEvaluator
from repro.search.session import SearchSession
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.constraints import LatencyTarget, ResourceConstraint
    from repro.core.dnn_config import DNNConfig
    from repro.hw.analytical import PerformanceEstimate

logger = get_logger(__name__)


@dataclass
class ExplorationResult:
    """Outcome of one :meth:`Explorer.explore` run."""

    strategy: str
    candidates: list
    estimates: list
    evaluations: int
    iterations: int
    converged: bool

    def __len__(self) -> int:
        return len(self.candidates)


class Explorer(ABC):
    """Base class of all exploration strategies.

    Parameters
    ----------
    estimator:
        Maps a :class:`DNNConfig` to a :class:`PerformanceEstimate`.  May be
        omitted when ``cache`` is given (the cache already wraps one).
    cache:
        Shared :class:`EvaluationCache`; a fresh one is created around
        ``estimator`` when omitted.  Passing the same cache to several
        explorers shares memoized estimates across strategies and targets.
    session:
        Optional journal; every evaluation and accepted candidate is
        recorded into it.
    workers:
        Worker threads used for population batches (``evaluate_batch``).
        ``1`` keeps everything serial and bit-reproducible.
    parallel:
        An existing :class:`ParallelEvaluator` to share (its worker pool
        outlives this explorer and ``workers`` is ignored); one is created
        and owned by the explorer when omitted.
    max_iterations:
        Strategy loop / evaluation budget (the SCD adapter interprets it as
        Algorithm 1's iteration budget, the other strategies as an estimator
        request budget).
    """

    strategy_name: ClassVar[str] = "base"

    def __init__(
        self,
        estimator: Optional[Callable] = None,
        latency_target: Optional["LatencyTarget"] = None,
        resource_constraint: Optional["ResourceConstraint"] = None,
        *,
        max_repetitions: int = 8,
        max_iterations: int = 400,
        rng: RNGLike = None,
        cache: Optional[EvaluationCache] = None,
        session: Optional[SearchSession] = None,
        workers: int = 1,
        parallel: Optional[ParallelEvaluator] = None,
    ) -> None:
        if latency_target is None or resource_constraint is None:
            raise ValueError("latency_target and resource_constraint are required")
        if cache is None:
            if estimator is None:
                raise ValueError("either an estimator or an EvaluationCache is required")
            cache = EvaluationCache(estimator)
        if max_repetitions <= 0 or max_iterations <= 0:
            raise ValueError("max_repetitions and max_iterations must be positive")
        self.cache = cache
        self.latency_target = latency_target
        self.resource_constraint = resource_constraint
        self.max_repetitions = max_repetitions
        self.max_iterations = max_iterations
        self.rng = ensure_rng(rng)
        self.session = session
        self._owns_parallel = parallel is None
        self.parallel = parallel if parallel is not None else ParallelEvaluator(
            cache.estimator, workers=workers
        )

        self._candidates: list["DNNConfig"] = []
        self._estimates: list["PerformanceEstimate"] = []
        self._seen: set[str] = set()
        self._evaluations = 0

    # -------------------------------------------------------------- evaluation
    def evaluate(self, config: "DNNConfig") -> "PerformanceEstimate":
        """Evaluate one config through the cache, journaling the request."""
        estimate, cached = self.cache.evaluate_with_info(config)
        self._note(config, estimate, cached)
        return estimate

    def score_generation(self, configs) -> list:
        """Score one generation (a population batch) of configs.

        Unique missing configs are estimated once — through the estimator's
        vectorized ``estimate_batch`` when it offers one (see
        :func:`repro.search.cache.resolve_batch_estimator`), or across the
        worker pool when this explorer runs with ``workers > 1``.  Results
        are bit-identical to scalar evaluation, and every config is journaled
        in input order, so session journals do not depend on the path taken.
        """
        pairs = self.cache.evaluate_batch(configs, parallel=self.parallel, with_info=True)
        for config, (estimate, cached) in zip(configs, pairs):
            self._note(config, estimate, cached)
        return [estimate for estimate, _ in pairs]

    def evaluate_batch(self, configs) -> list:
        """Alias of :meth:`score_generation` (the historical name)."""
        return self.score_generation(configs)

    def _note(self, config, estimate, cached: bool) -> None:
        self._evaluations += 1
        if self.session is not None:
            self.session.record_evaluation(
                self.strategy_name,
                self.cache.key_fn(config),
                estimate,
                within_band=self.in_band(estimate),
                feasible=self.feasible(estimate),
                cached=cached,
            )

    # --------------------------------------------------------------- verdicts
    def in_band(self, estimate: "PerformanceEstimate") -> bool:
        return self.latency_target.within_band(estimate.latency_ms)

    def feasible(self, estimate: "PerformanceEstimate") -> bool:
        return self.resource_constraint.satisfied_by(estimate.resources)

    def consider(self, config: "DNNConfig", estimate: "PerformanceEstimate") -> bool:
        """Accept ``config`` as a candidate when in band, feasible and new."""
        if not (self.in_band(estimate) and self.feasible(estimate)):
            return False
        # Structural key (not describe(), which aliases distinct Pi/X configs).
        key = self.cache.key_fn(config)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._candidates.append(config)
        self._estimates.append(estimate)
        if self.session is not None:
            self.session.record_candidate(
                self.strategy_name, self.cache.key_fn(config), estimate.latency_ms
            )
        return True

    @property
    def budget_left(self) -> int:
        return max(self.max_iterations - self._evaluations, 0)

    # ------------------------------------------------------------ exploration
    def explore(self, initial: "DNNConfig", num_candidates: int = 3) -> ExplorationResult:
        """Search for ``num_candidates`` distinct in-band, feasible configs."""
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        self._candidates = []
        self._estimates = []
        self._seen = set()
        self._evaluations = 0
        iterations = self._explore(initial, num_candidates)
        converged = len(self._candidates) >= num_candidates
        if not converged:
            logger.warning(
                "%s explorer stopped after %d evaluations with %d/%d candidates",
                self.strategy_name, self._evaluations, len(self._candidates), num_candidates,
            )
        return ExplorationResult(
            strategy=self.strategy_name,
            candidates=list(self._candidates),
            estimates=list(self._estimates),
            evaluations=self._evaluations,
            iterations=iterations,
            converged=converged,
        )

    @abstractmethod
    def _explore(self, initial: "DNNConfig", num_candidates: int) -> int:
        """Run the strategy; returns the number of loop iterations used."""

    def close(self) -> None:
        """Release the worker pool (only when this explorer created it)."""
        if self._owns_parallel:
            self.parallel.close()


# ------------------------------------------------------------------- registry
_EXPLORERS: dict[str, type[Explorer]] = {}
_BUILTINS_LOADED = False


def register_explorer(name: str) -> Callable[[type[Explorer]], type[Explorer]]:
    """Class decorator registering an :class:`Explorer` under ``name``."""

    def decorator(cls: type[Explorer]) -> type[Explorer]:
        cls.strategy_name = name
        _EXPLORERS[name] = cls
        return cls

    return decorator


def _load_builtin_strategies() -> None:
    # Imported lazily: the built-in strategies depend on repro.core.scd,
    # which itself imports repro.search.cache.
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.search.strategies  # noqa: F401

        _BUILTINS_LOADED = True


def explorer_class(name: str) -> type[Explorer]:
    """Resolve a registered strategy name to its :class:`Explorer` class."""
    _load_builtin_strategies()
    try:
        return _EXPLORERS[name]
    except KeyError:
        raise KeyError(
            f"Unknown search strategy '{name}'; "
            f"available: {', '.join(sorted(_EXPLORERS))}"
        ) from None


def available_strategies() -> list[str]:
    """Names of all registered strategies, sorted."""
    _load_builtin_strategies()
    return sorted(_EXPLORERS)


def create_explorer(name: str, **kwargs) -> Explorer:
    """Instantiate a registered strategy by name."""
    return explorer_class(name)(**kwargs)
