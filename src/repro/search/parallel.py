"""Batch evaluation of candidate populations across worker threads.

The analytical estimators are pure Python / numpy closures over device and
coefficient objects, so a thread pool is the right executor: nothing needs to
be pickled and numpy releases the GIL in its kernels.  With ``workers=1`` the
evaluator degenerates to a plain serial loop with zero overhead, which is
also the mode that guarantees bit-identical search journals.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.dnn_config import DNNConfig
    from repro.hw.analytical import PerformanceEstimate


class ParallelEvaluator:
    """Order-preserving parallel ``map`` of an estimator over configs."""

    def __init__(
        self,
        estimator: Callable[["DNNConfig"], "PerformanceEstimate"],
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.estimator = estimator
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    # -------------------------------------------------------------- execution
    def map(self, configs: Sequence["DNNConfig"]) -> list["PerformanceEstimate"]:
        """Evaluate every config, returning estimates in input order."""
        if self.workers == 1 or len(configs) <= 1:
            return [self.estimator(config) for config in configs]
        return list(self._ensure_pool().map(self.estimator, configs))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-search"
            )
        return self._pool

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the worker pool down (no-op when never started)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
