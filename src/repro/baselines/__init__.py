"""Baseline designs the paper compares against in Table 2.

Three FPGA-category entries (the 1st place is a compressed SSD detector) and
three GPU-category entries (Yolo / Tiny-Yolo on an embedded GPU) from the
2018 DAC System Design Contest.  Each baseline carries the metrics reported
in the contest / paper and, where possible, a reconstructed workload so the
same latency / power models used for our designs can re-derive its numbers.
"""

from repro.baselines.entries import (
    ContestEntry,
    fpga_contest_entries,
    gpu_contest_entries,
)
from repro.baselines.workloads import ssd_compressed_workload, tiny_yolo_workload, yolo_workload
from repro.baselines.topdown import TopDownFlow, TopDownResult

__all__ = [
    "ContestEntry",
    "fpga_contest_entries",
    "gpu_contest_entries",
    "ssd_compressed_workload",
    "tiny_yolo_workload",
    "yolo_workload",
    "TopDownFlow",
    "TopDownResult",
]
