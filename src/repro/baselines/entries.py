"""Contest entries used as comparison rows in Table 2.

Each :class:`ContestEntry` combines the metrics reported by the contest /
paper with an optional reconstructed workload.  The Table 2 experiment
re-derives latency / power / energy for every entry that has a workload by
running it through the same FPGA or GPU models used for our designs, so that
the comparison is consistent inside the reproduction; the reported numbers
are kept alongside for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.workloads import (
    heavy_fpga_workload,
    lightweight_fpga_workload,
    ssd_compressed_workload,
    tiny_yolo_workload,
    yolo_workload,
)
from repro.hw.workload import NetworkWorkload


@dataclass(frozen=True)
class ContestEntry:
    """One comparison row of Table 2.

    Attributes
    ----------
    name:
        Row label (e.g. ``"1st in FPGA"``).
    category:
        ``"fpga"`` or ``"gpu"``.
    model_name:
        Detector architecture reported by the team (e.g. ``"SSD"``).
    reported_iou:
        Accuracy reported by the contest.
    reported_latency_ms / reported_fps / reported_power_w /
    reported_energy_kj / reported_j_per_pic:
        Board measurements reported in Table 2.
    clock_mhz:
        Clock the entry ran at.
    workload:
        Reconstructed workload for model-based re-derivation (``None`` when
        the architecture is unknown).
    reported_utilization:
        LUT / DSP / BRAM / FF utilization percentages (FPGA entries only).
    """

    name: str
    category: str
    model_name: str
    reported_iou: float
    reported_latency_ms: float
    reported_fps: float
    reported_power_w: float
    reported_energy_kj: float
    reported_j_per_pic: float
    clock_mhz: float
    workload: Optional[NetworkWorkload] = None
    reported_utilization: Optional[dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.category not in ("fpga", "gpu"):
            raise ValueError("category must be 'fpga' or 'gpu'")
        if not 0.0 <= self.reported_iou <= 1.0:
            raise ValueError("reported_iou must be in [0, 1]")


def fpga_contest_entries() -> list[ContestEntry]:
    """The three FPGA-category rows of Table 2."""
    return [
        ContestEntry(
            name="1st in FPGA", category="fpga", model_name="SSD",
            reported_iou=0.624, reported_latency_ms=84.6, reported_fps=11.96,
            reported_power_w=4.2, reported_energy_kj=17.56, reported_j_per_pic=0.35,
            clock_mhz=150.0, workload=ssd_compressed_workload(),
            reported_utilization={"lut": 83.9, "dsp": 100.0, "bram": 78.9, "ff": 54.2},
        ),
        ContestEntry(
            name="2nd in FPGA", category="fpga", model_name="-",
            reported_iou=0.492, reported_latency_ms=38.5, reported_fps=25.97,
            reported_power_w=2.5, reported_energy_kj=4.81, reported_j_per_pic=0.10,
            clock_mhz=150.0, workload=lightweight_fpga_workload(),
            reported_utilization={"lut": 88.0, "dsp": 78.0, "bram": 77.0, "ff": 62.0},
        ),
        ContestEntry(
            name="3rd in FPGA", category="fpga", model_name="-",
            reported_iou=0.573, reported_latency_ms=136.1, reported_fps=7.35,
            reported_power_w=2.6, reported_energy_kj=17.69, reported_j_per_pic=0.35,
            clock_mhz=150.0, workload=heavy_fpga_workload(),
            reported_utilization={"lut": 63.0, "dsp": 86.0, "bram": 95.0, "ff": 22.0},
        ),
    ]


def gpu_contest_entries() -> list[ContestEntry]:
    """The three GPU-category rows of Table 2."""
    return [
        ContestEntry(
            name="1st in GPU", category="gpu", model_name="Yolo",
            reported_iou=0.698, reported_latency_ms=40.7, reported_fps=24.55,
            reported_power_w=12.6, reported_energy_kj=25.66, reported_j_per_pic=0.51,
            clock_mhz=854.0, workload=yolo_workload(),
        ),
        ContestEntry(
            name="2nd in GPU", category="gpu", model_name="Tiny-Yolo",
            reported_iou=0.691, reported_latency_ms=39.5, reported_fps=25.3,
            reported_power_w=13.3, reported_energy_kj=26.28, reported_j_per_pic=0.53,
            clock_mhz=854.0, workload=tiny_yolo_workload(),
        ),
        ContestEntry(
            name="3rd in GPU", category="gpu", model_name="Tiny-Yolo",
            reported_iou=0.685, reported_latency_ms=42.3, reported_fps=23.64,
            reported_power_w=10.3, reported_energy_kj=21.79, reported_j_per_pic=0.44,
            clock_mhz=854.0, workload=tiny_yolo_workload(),
        ),
    ]
