"""Reconstructed workloads of the baseline detectors.

The contest entries did not publish their exact layer configurations, so the
workloads here are representative reconstructions: a channel-pruned SSD-style
detector for the 1st-place FPGA entry, and the standard Yolo / Tiny-Yolo
backbones for the GPU entries, all expressed as
:class:`repro.hw.workload.NetworkWorkload` so that the same latency models
evaluate them and our designs.
"""

from __future__ import annotations

from repro.hw.workload import LayerWorkload, NetworkWorkload


def _conv_chain(
    spec: list[tuple[int, int, int, int]],
    input_shape: tuple[int, int, int],
    with_pool_after: set[int] | None = None,
) -> list[LayerWorkload]:
    """Build a plain convolution chain.

    ``spec`` rows are ``(kernel, out_channels, stride, bundle_index)``;
    ``with_pool_after`` lists row indices followed by a 2x2 max pooling.
    """
    with_pool_after = with_pool_after or set()
    c, h, w = input_shape
    layers: list[LayerWorkload] = []
    for i, (kernel, out_c, stride, bundle) in enumerate(spec):
        layers.append(LayerWorkload(
            kind="conv", kernel=kernel, in_channels=c, out_channels=out_c,
            in_height=h, in_width=w, stride=stride, bundle_index=bundle,
        ))
        c = out_c
        h, w = max(h // stride, 1), max(w // stride, 1)
        if i in with_pool_after:
            layers.append(LayerWorkload(
                kind="pool", kernel=2, in_channels=c, out_channels=c,
                in_height=h, in_width=w, stride=2, bundle_index=bundle,
            ))
            h, w = max(h // 2, 1), max(w // 2, 1)
    return layers


def ssd_compressed_workload(input_shape: tuple[int, int, int] = (3, 160, 320)) -> NetworkWorkload:
    """Channel-pruned SSD-style detector (1st-place FPGA entry).

    A top-down design: a standard SSD backbone compressed until it fits the
    PYNQ-Z1.  It remains convolution-heavy compared to the co-designed
    depth-wise networks, which is exactly the comparison the paper draws.
    """
    spec = [
        (3, 24, 2, 0),
        (3, 32, 1, 0),
        (3, 48, 2, 1),
        (3, 48, 1, 1),
        (3, 96, 2, 2),
        (3, 96, 1, 2),
        (3, 128, 2, 3),
        (3, 128, 1, 3),
        (1, 64, 1, 4),
        (3, 128, 2, 4),
        (1, 64, 1, 5),
        (3, 128, 1, 5),
    ]
    layers = _conv_chain(spec, input_shape)
    layers.append(LayerWorkload(
        kind="head", kernel=1, in_channels=128, out_channels=4,
        in_height=layers[-1].out_height, in_width=layers[-1].out_width, bundle_index=-1,
    ))
    return NetworkWorkload(
        layers=layers, input_shape=input_shape, weight_bits=8, feature_bits=16,
        name="ssd-compressed", bundle_signature="conv3x3+conv3x3",
    )


def lightweight_fpga_workload(input_shape: tuple[int, int, int] = (3, 160, 320)) -> NetworkWorkload:
    """Small hand-designed detector representative of the 2nd-place FPGA entry."""
    spec = [
        (3, 16, 2, 0),
        (3, 32, 2, 1),
        (3, 64, 2, 2),
        (3, 64, 2, 3),
        (1, 32, 1, 4),
        (3, 64, 1, 4),
    ]
    layers = _conv_chain(spec, input_shape)
    layers.append(LayerWorkload(
        kind="head", kernel=1, in_channels=64, out_channels=4,
        in_height=layers[-1].out_height, in_width=layers[-1].out_width, bundle_index=-1,
    ))
    return NetworkWorkload(
        layers=layers, input_shape=input_shape, weight_bits=8, feature_bits=8,
        name="lightweight-fpga", bundle_signature="conv3x3",
    )


def heavy_fpga_workload(input_shape: tuple[int, int, int] = (3, 160, 320)) -> NetworkWorkload:
    """Large, less-optimised detector representative of the 3rd-place FPGA entry."""
    spec = [
        (3, 32, 2, 0),
        (3, 48, 1, 0),
        (3, 64, 2, 1),
        (3, 64, 1, 1),
        (3, 128, 2, 2),
        (3, 128, 1, 2),
        (3, 192, 2, 3),
        (3, 192, 1, 3),
        (3, 192, 1, 4),
    ]
    layers = _conv_chain(spec, input_shape)
    layers.append(LayerWorkload(
        kind="head", kernel=1, in_channels=192, out_channels=4,
        in_height=layers[-1].out_height, in_width=layers[-1].out_width, bundle_index=-1,
    ))
    return NetworkWorkload(
        layers=layers, input_shape=input_shape, weight_bits=8, feature_bits=16,
        name="heavy-fpga", bundle_signature="conv3x3+conv3x3",
    )


def yolo_workload(input_shape: tuple[int, int, int] = (3, 256, 256)) -> NetworkWorkload:
    """YOLOv2-style backbone (Darknet-19) used by the 1st-place GPU entry."""
    spec = [
        (3, 32, 1, 0),
        (3, 64, 1, 1),
        (3, 128, 1, 2),
        (1, 64, 1, 2),
        (3, 128, 1, 2),
        (3, 256, 1, 3),
        (1, 128, 1, 3),
        (3, 256, 1, 3),
        (3, 512, 1, 4),
        (1, 256, 1, 4),
        (3, 512, 1, 4),
        (1, 256, 1, 4),
        (3, 512, 1, 4),
        (3, 1024, 1, 5),
        (1, 512, 1, 5),
        (3, 1024, 1, 5),
        (1, 512, 1, 5),
        (3, 1024, 1, 5),
        (3, 1024, 1, 6),
        (3, 1024, 1, 6),
        (1, 425, 1, 6),
    ]
    pools = {0, 1, 4, 7, 12}
    layers = _conv_chain(spec, input_shape, with_pool_after=pools)
    return NetworkWorkload(
        layers=layers, input_shape=input_shape, weight_bits=16, feature_bits=16,
        name="yolo", bundle_signature="conv3x3+conv1x1",
    )


def tiny_yolo_workload(input_shape: tuple[int, int, int] = (3, 416, 416)) -> NetworkWorkload:
    """Tiny-YOLO backbone used by the 2nd / 3rd-place GPU entries."""
    spec = [
        (3, 16, 1, 0),
        (3, 32, 1, 1),
        (3, 64, 1, 2),
        (3, 128, 1, 3),
        (3, 256, 1, 4),
        (3, 512, 1, 5),
        (3, 1024, 1, 6),
        (3, 512, 1, 6),
        (1, 425, 1, 6),
    ]
    pools = {0, 1, 2, 3, 4, 5}
    layers = _conv_chain(spec, input_shape, with_pool_after=pools)
    return NetworkWorkload(
        layers=layers, input_shape=input_shape, weight_bits=16, feature_bits=16,
        name="tiny-yolo", bundle_signature="conv3x3",
    )
