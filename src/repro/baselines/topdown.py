"""The conventional top-down design flow used as a methodological baseline.

Sec. 1 and Sec. 6 of the paper contrast the proposed co-design flow with the
top-down approach the 1st-place FPGA team followed: start from a standard
DNN detector designed purely for accuracy, then compress it (channel
pruning / quantization) until it satisfies the hardware constraints.  This
module implements that flow so the comparison can be re-run, and so an
ablation can quantify how much the bottom-up co-design contributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.detection.accuracy_model import AccuracyModel, CandidateFeatures, SurrogateAccuracyModel
from repro.hw.analytical import DNNPerformanceModel
from repro.hw.device import FPGADevice
from repro.hw.resource import ResourceVector
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.workload import LayerWorkload, NetworkWorkload
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class TopDownResult:
    """Outcome of the compress-until-it-fits flow."""

    workload: NetworkWorkload
    accuracy: float
    latency_ms: float
    resources: ResourceVector
    compression_steps: int
    pruning_ratio: float

    @property
    def fps(self) -> float:
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else float("inf")


def _prune_channels(workload: NetworkWorkload, keep_ratio: float) -> NetworkWorkload:
    """Uniformly prune every layer's channels by ``keep_ratio``."""
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must be in (0, 1]")
    c_in_first = workload.layers[0].in_channels
    pruned: list[LayerWorkload] = []
    for layer in workload.layers:
        in_c = layer.in_channels if layer.in_channels == c_in_first else max(
            int(round(layer.in_channels * keep_ratio)), 4
        )
        out_c = layer.out_channels
        if layer.kind != "head":
            out_c = max(int(round(layer.out_channels * keep_ratio)), 4)
        if layer.kind in ("dwconv", "pool", "activation", "norm"):
            out_c = in_c
        pruned.append(LayerWorkload(
            kind=layer.kind, kernel=layer.kernel, in_channels=in_c, out_channels=out_c,
            in_height=layer.in_height, in_width=layer.in_width, stride=layer.stride,
            bundle_index=layer.bundle_index,
        ))
    return NetworkWorkload(
        layers=pruned, input_shape=workload.input_shape,
        weight_bits=workload.weight_bits, feature_bits=workload.feature_bits,
        name=f"{workload.name}-pruned{keep_ratio:.2f}",
        bundle_signature=workload.bundle_signature,
    )


class TopDownFlow:
    """Compress a fixed accuracy-first detector until it meets the constraints."""

    def __init__(
        self,
        device: FPGADevice,
        accuracy_model: Optional[AccuracyModel] = None,
        parallel_factor: int = 64,
        clock_mhz: Optional[float] = None,
        prune_step: float = 0.85,
        max_steps: int = 20,
    ) -> None:
        if not 0.0 < prune_step < 1.0:
            raise ValueError("prune_step must be in (0, 1)")
        self.device = device
        self.accuracy_model = accuracy_model or SurrogateAccuracyModel()
        self.parallel_factor = parallel_factor
        self.clock_mhz = clock_mhz or device.default_clock_mhz
        self.prune_step = prune_step
        self.max_steps = max_steps

    def _evaluate(self, workload: NetworkWorkload) -> tuple[float, ResourceVector]:
        accelerator = TileArchAccelerator.build(
            workload, self.device, parallel_factor=self.parallel_factor, clock_mhz=self.clock_mhz
        )
        estimate = DNNPerformanceModel(accelerator).estimate()
        return estimate.latency_ms, estimate.resources

    def _accuracy(self, workload: NetworkWorkload) -> float:
        features = CandidateFeatures(
            macs=float(workload.total_macs),
            params=workload.total_params,
            depth=workload.compute_depth,
            max_channels=workload.max_channels,
            num_downsamples=workload.num_downsamples,
            feature_bits=workload.feature_bits,
            weight_bits=workload.weight_bits,
            bundle_signature=workload.bundle_signature,
            input_pixels=workload.input_shape[1] * workload.input_shape[2],
            epochs=200,
        )
        return self.accuracy_model.predict(features)

    def run(
        self, workload: NetworkWorkload, latency_budget_ms: float
    ) -> TopDownResult:
        """Prune until the design fits the device and the latency budget."""
        if latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        current = workload
        ratio = 1.0
        steps = 0
        latency, resources = self._evaluate(current)
        while steps < self.max_steps and (
            latency > latency_budget_ms or not self.device.fits(resources)
        ):
            ratio *= self.prune_step
            current = _prune_channels(workload, ratio)
            latency, resources = self._evaluate(current)
            steps += 1
        accuracy = self._accuracy(current)
        logger.info(
            "Top-down flow: %d compression steps, keep ratio %.2f, latency %.1f ms, IoU %.3f",
            steps, ratio, latency, accuracy,
        )
        return TopDownResult(
            workload=current,
            accuracy=accuracy,
            latency_ms=latency,
            resources=resources,
            compression_steps=steps,
            pruning_ratio=ratio,
        )
