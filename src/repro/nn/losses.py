"""Loss functions for bounding-box regression.

All losses operate on box tensors of shape ``(N, 4)`` with normalised
``(cx, cy, w, h)`` coordinates and return ``(value, grad_wrt_pred)``.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class: callables returning ``(scalar_loss, gradient)``."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error over all coordinates."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad


class L1Loss(Loss):
    """Mean absolute error over all coordinates."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        loss = float(np.mean(np.abs(diff)))
        grad = np.sign(diff) / diff.size
        return loss, grad


class SmoothL1Loss(Loss):
    """Huber-style smooth L1 loss commonly used for box regression."""

    def __init__(self, beta: float = 0.1) -> None:
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        abs_diff = np.abs(diff)
        quadratic = abs_diff < self.beta
        loss_elem = np.where(
            quadratic, 0.5 * diff**2 / self.beta, abs_diff - 0.5 * self.beta
        )
        grad_elem = np.where(quadratic, diff / self.beta, np.sign(diff))
        return float(loss_elem.mean()), grad_elem / diff.size


class IoULoss(Loss):
    """``1 - IoU`` loss on ``(cx, cy, w, h)`` boxes.

    The IoU is differentiated numerically stable by clamping widths / heights
    below ``eps``; for degenerate boxes the loss falls back to an L1 penalty,
    which keeps gradients informative early in training.
    """

    def __init__(self, eps: float = 1e-6) -> None:
        self.eps = eps
        self._l1 = L1Loss()

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        # Decompose into corner coordinates.
        px1 = pred[:, 0] - pred[:, 2] / 2
        py1 = pred[:, 1] - pred[:, 3] / 2
        px2 = pred[:, 0] + pred[:, 2] / 2
        py2 = pred[:, 1] + pred[:, 3] / 2
        tx1 = target[:, 0] - target[:, 2] / 2
        ty1 = target[:, 1] - target[:, 3] / 2
        tx2 = target[:, 0] + target[:, 2] / 2
        ty2 = target[:, 1] + target[:, 3] / 2

        ix1 = np.maximum(px1, tx1)
        iy1 = np.maximum(py1, ty1)
        ix2 = np.minimum(px2, tx2)
        iy2 = np.minimum(py2, ty2)
        iw = np.clip(ix2 - ix1, 0.0, None)
        ih = np.clip(iy2 - iy1, 0.0, None)
        inter = iw * ih
        area_p = np.clip(pred[:, 2], self.eps, None) * np.clip(pred[:, 3], self.eps, None)
        area_t = target[:, 2] * target[:, 3]
        union = area_p + area_t - inter + self.eps
        iou = inter / union

        loss = float(np.mean(1.0 - iou))

        # Numerical gradient via the analytic L1 surrogate blended with IoU:
        # using the smooth-L1 gradient scaled by (1 - IoU) keeps boxes moving
        # toward the target while weighting hard examples more.
        l1_loss, l1_grad = self._l1(pred, target)
        del l1_loss
        weight = (1.0 - iou)[:, None]
        grad = l1_grad * (0.5 + weight) * pred.shape[0]
        grad /= pred.shape[0]
        return loss, grad


LOSS_REGISTRY = {
    "mse": MSELoss,
    "l1": L1Loss,
    "smooth_l1": SmoothL1Loss,
    "iou": IoULoss,
}


def make_loss(name: str, **kwargs) -> Loss:
    """Instantiate a loss by name."""
    key = name.lower()
    if key not in LOSS_REGISTRY:
        raise KeyError(f"Unknown loss '{name}'. Available: {sorted(LOSS_REGISTRY)}")
    return LOSS_REGISTRY[key](**kwargs)
