"""Fixed-point quantization schemes.

The co-design space ties quantization to the accelerator: the configured IP
instances share a quantization scheme ``Q_j`` (Table 1), and the activation
choice (ReLU / ReLU4 / ReLU8) bounds feature-map dynamic range, which decides
the feature-map bit width used on the board (Fig. 5 / Fig. 6: "8-bit feature
map (Relu4)" vs "16-bit fm (Relu)").

This module provides:

* :class:`QuantizationScheme` — weight/feature-map bit widths and the DSP /
  memory cost factors that the hardware resource models consume.
* :class:`FixedPointQuantizer` — symmetric linear quantizer used to quantize
  trained weights and simulate quantized inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizationScheme:
    """Bit widths for weights and feature maps.

    Attributes
    ----------
    name:
        Identifier used in design-point descriptions (e.g. ``"w8a8"``).
    weight_bits:
        Bit width of convolution weights.
    feature_bits:
        Bit width of activations / feature maps.
    """

    name: str
    weight_bits: int
    feature_bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.weight_bits <= 32:
            raise ValueError("weight_bits must be in [1, 32]")
        if not 1 <= self.feature_bits <= 32:
            raise ValueError("feature_bits must be in [1, 32]")

    @property
    def macs_per_dsp(self) -> int:
        """How many multiply-accumulates one DSP48 slice performs per cycle.

        Following the INT8 DSP-packing optimisation, two multiplications that
        share one activation operand can be packed into a single DSP48 slice
        when the weights are 8 bits or narrower; wide (16-bit) weights need a
        full DSP each.
        """
        if self.weight_bits <= 8:
            return 2
        return 1

    @property
    def weight_bytes(self) -> float:
        """Bytes per weight after quantization."""
        return self.weight_bits / 8.0

    @property
    def feature_bytes(self) -> float:
        """Bytes per feature-map element after quantization."""
        return self.feature_bits / 8.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Schemes used throughout the paper's experiments.
W8A8 = QuantizationScheme("w8a8", weight_bits=8, feature_bits=8)
W8A10 = QuantizationScheme("w8a10", weight_bits=8, feature_bits=10)
W8A16 = QuantizationScheme("w8a16", weight_bits=8, feature_bits=16)
W16A16 = QuantizationScheme("w16a16", weight_bits=16, feature_bits=16)
FLOAT32 = QuantizationScheme("float32", weight_bits=32, feature_bits=32)

SCHEMES = {s.name: s for s in (W8A8, W8A10, W8A16, W16A16, FLOAT32)}


def scheme_for_activation(activation: str, weight_bits: int = 8) -> QuantizationScheme:
    """Map a ReLU-family activation name to its quantization scheme.

    The paper pairs ReLU4 with 8-bit feature maps, ReLU8 with 10-bit and
    unbounded ReLU with 16-bit feature maps.
    """
    key = activation.lower()
    feature_bits = {"relu4": 8, "relu8": 10, "relu": 16}.get(key)
    if feature_bits is None:
        raise KeyError(f"No quantization mapping for activation '{activation}'")
    return QuantizationScheme(f"w{weight_bits}a{feature_bits}", weight_bits, feature_bits)


class FixedPointQuantizer:
    """Symmetric linear (power-of-two-free) quantizer.

    Values are mapped to integers in ``[-2^(bits-1), 2^(bits-1) - 1]`` using a
    per-tensor scale.
    """

    def __init__(self, bits: int) -> None:
        if not 2 <= bits <= 32:
            raise ValueError("bits must be in [2, 32]")
        self.bits = bits
        self.qmin = -(2 ** (bits - 1))
        self.qmax = 2 ** (bits - 1) - 1

    def scale_for(self, tensor: np.ndarray) -> float:
        """Per-tensor scale that maps the max absolute value to ``qmax``."""
        max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
        scale = max_abs / self.qmax
        if scale <= 0.0 or not np.isfinite(scale):
            return 1.0
        return scale

    def quantize(self, tensor: np.ndarray, scale: float | None = None) -> tuple[np.ndarray, float]:
        """Quantize to integers; returns ``(int_tensor, scale)``."""
        if scale is None:
            scale = self.scale_for(tensor)
        if scale <= 0.0 or not np.isfinite(scale):
            scale = 1.0
        values = np.asarray(tensor)
        if np.issubdtype(values.dtype, np.floating) and values.dtype != np.float64 \
                and scale < float(np.finfo(values.dtype).tiny):
            # A scale below the tensor dtype's normal range (subnormal
            # inputs) underflows to 0 when the division runs in that dtype,
            # making it 0/0 = NaN -> INT32_MIN after the cast; only then is
            # the float64 copy worth paying for on the quantization hot path.
            values = values.astype(np.float64)
        q = np.clip(np.round(values / scale), self.qmin, self.qmax)
        return q.astype(np.int32), scale

    def dequantize(self, q: np.ndarray, scale: float) -> np.ndarray:
        """Map integer values back to floating point."""
        return (q.astype(np.float32)) * scale

    def fake_quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Quantize-then-dequantize; used to simulate quantized inference."""
        q, scale = self.quantize(tensor)
        return self.dequantize(q, scale)

    def quantization_error(self, tensor: np.ndarray) -> float:
        """RMS error introduced by quantizing ``tensor``."""
        if tensor.size == 0:
            return 0.0
        return float(np.sqrt(np.mean((tensor - self.fake_quantize(tensor)) ** 2)))


def quantize_model_weights(model, scheme: QuantizationScheme) -> dict[str, float]:
    """In-place fake-quantize every parameter of ``model``.

    Returns a mapping of parameter name to the scale that was applied, so the
    caller can reconstruct integer weights for deployment.
    """
    quantizer = FixedPointQuantizer(scheme.weight_bits)
    scales: dict[str, float] = {}
    for param in model.parameters():
        q, scale = quantizer.quantize(param.value)
        param.value = quantizer.dequantize(q, scale)
        scales[param.name] = scale
    return scales
