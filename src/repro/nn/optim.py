"""Gradient-descent optimizers for the numpy DNN framework."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers.base import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("Learning rate must be positive")
        self.parameters: Sequence[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("Optimizer received no parameters")
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v -= self.lr * grad
                p.value += v
            else:
                p.value -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / (1 - beta1**self._t)
            v_hat = v / (1 - beta2**self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Decay an optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and decay the learning rate when due."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
