"""Low-level numerical kernels used by the layer implementations.

All tensors follow the ``NCHW`` layout (batch, channels, height, width).  The
convolution kernels are implemented with ``im2col``/``col2im`` so that both
the forward and the backward passes reduce to dense matrix multiplications,
which keeps the pure-numpy framework fast enough to train the small proxy
DNNs used in the co-design flow.
"""

from __future__ import annotations

import numpy as np


def pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an ``NCHW`` tensor."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    img = pad_input(x, pad)
    col = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for y in range(kernel_h):
        y_max = y + stride * out_h
        for xx in range(kernel_w):
            x_max = xx + stride * out_w
            col[:, :, y, xx, :, :] = img[:, :, y:y_max:stride, xx:x_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`; accumulates overlapping patches."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    col = col.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)

    img = np.zeros((n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1), dtype=col.dtype)
    for y in range(kernel_h):
        y_max = y + stride * out_h
        for xx in range(kernel_w):
            x_max = xx + stride * out_w
            img[:, :, y:y_max:stride, xx:x_max:stride] += col[:, :, y, xx, :, :]
    return img[:, :, pad:h + pad, pad:w + pad]


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, pad: int
) -> tuple[np.ndarray, np.ndarray]:
    """Standard 2-D convolution forward pass.

    Parameters
    ----------
    x:
        Input ``(N, C_in, H, W)``.
    weight:
        Filters ``(C_out, C_in, kH, kW)``.
    bias:
        Optional per-output-channel bias ``(C_out,)``.

    Returns
    -------
    tuple
        ``(output, col)`` where ``col`` is the im2col matrix cached for the
        backward pass.
    """
    n, _, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)

    col = im2col(x, kh, kw, stride, pad)
    w_col = weight.reshape(c_out, -1).T
    out = col @ w_col
    if bias is not None:
        out += bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return out, col


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    col: np.ndarray,
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weight, grad_bias)``.
    """
    c_out, c_in, kh, kw = weight.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_weight = (col.T @ grad_flat).T.reshape(c_out, c_in, kh, kw)
    grad_bias = grad_flat.sum(axis=0)

    w_col = weight.reshape(c_out, -1)
    grad_col = grad_flat @ w_col
    grad_input = col2im(grad_col, x_shape, kh, kw, stride, pad)
    return grad_input, grad_weight, grad_bias


def depthwise_conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, pad: int
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Depth-wise 2-D convolution forward pass.

    Parameters
    ----------
    weight:
        Per-channel filters ``(C, 1, kH, kW)``.

    Returns
    -------
    tuple
        ``(output, cols)`` where ``cols`` caches the per-channel im2col
        matrices for the backward pass.
    """
    n, c, h, w = x.shape
    _, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)

    out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
    cols: list[np.ndarray] = []
    for ch in range(c):
        col = im2col(x[:, ch:ch + 1], kh, kw, stride, pad)
        cols.append(col)
        res = col @ weight[ch].reshape(-1, 1)
        out[:, ch] = res.reshape(n, out_h, out_w)
    if bias is not None:
        out += bias.reshape(1, c, 1, 1)
    return out, cols


def depthwise_conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    cols: list[np.ndarray],
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    n, c, h, w = x_shape
    _, _, kh, kw = weight.shape

    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    grad_weight = np.zeros_like(weight)
    grad_bias = grad_out.sum(axis=(0, 2, 3))
    for ch in range(c):
        grad_flat = grad_out[:, ch].reshape(-1, 1)
        grad_weight[ch] = (cols[ch].T @ grad_flat).reshape(1, kh, kw)
        grad_col = grad_flat @ weight[ch].reshape(1, -1)
        grad_input[:, ch:ch + 1] = col2im(grad_col, (n, 1, h, w), kh, kw, stride, pad)
    return grad_input, grad_weight, grad_bias


def max_pool_forward(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling forward; returns ``(output, argmax)`` for the backward pass."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    col = im2col(x, kernel, kernel, stride, 0).reshape(-1, kernel * kernel)
    # im2col interleaves channels; re-group so that the pooling window axis is
    # the last one for each (sample, position, channel) triple.
    col = col.reshape(n * out_h * out_w, c, kernel * kernel)
    argmax = col.argmax(axis=2)
    out = col.max(axis=2)
    out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    return out, argmax


def max_pool_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    argmax: np.ndarray,
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Backward pass for max pooling."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c)
    grad_col = np.zeros((n * out_h * out_w, c, kernel * kernel), dtype=grad_out.dtype)
    rows = np.arange(grad_col.shape[0])[:, None]
    cols_idx = np.arange(c)[None, :]
    grad_col[rows, cols_idx, argmax] = grad_flat
    grad_col = grad_col.reshape(n * out_h * out_w, c * kernel * kernel)
    return col2im(grad_col, x_shape, kernel, kernel, stride, 0)


def avg_pool_forward(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Average pooling forward pass."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    col = im2col(x, kernel, kernel, stride, 0).reshape(n * out_h * out_w, c, kernel * kernel)
    out = col.mean(axis=2)
    return out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)


def avg_pool_backward(
    grad_out: np.ndarray, x_shape: tuple[int, int, int, int], kernel: int, stride: int
) -> np.ndarray:
    """Backward pass for average pooling."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c, 1)
    grad_col = np.repeat(grad_flat / (kernel * kernel), kernel * kernel, axis=2)
    grad_col = grad_col.reshape(n * out_h * out_w, c * kernel * kernel)
    return col2im(grad_col, x_shape, kernel, kernel, stride, 0)


def clipped_relu(x: np.ndarray, clip: float | None) -> np.ndarray:
    """ReLU with an optional upper clip (ReLU4 / ReLU8 in the paper)."""
    out = np.maximum(x, 0.0)
    if clip is not None:
        out = np.minimum(out, clip)
    return out


def clipped_relu_grad(x: np.ndarray, clip: float | None) -> np.ndarray:
    """Elementwise gradient mask of :func:`clipped_relu`."""
    mask = (x > 0).astype(x.dtype)
    if clip is not None:
        mask *= (x < clip).astype(x.dtype)
    return mask


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out.astype(x.dtype, copy=False)
