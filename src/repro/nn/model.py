"""Sequential model container with shape inference and workload accounting."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.nn.layers.base import Layer, Parameter


class Sequential(Layer):
    """A linear stack of layers executed in order.

    The container also provides static analyses used by the co-design flow:
    per-layer output shapes, parameter counts and MAC counts, and a textual
    summary similar to Keras' ``model.summary()``.
    """

    layer_type = "model"

    def __init__(self, layers: Optional[Sequence[Layer]] = None, name: str = "model") -> None:
        super().__init__(name=name)
        self.layers: list[Layer] = list(layers) if layers else []

    # ------------------------------------------------------------- container
    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns ``self`` for chaining."""
        if not isinstance(layer, Layer):
            raise TypeError(f"Expected a Layer, got {type(layer).__name__}")
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    # ----------------------------------------------------------------- graph
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> Iterable[Parameter]:
        for layer in self.layers:
            yield from layer.parameters()

    def train(self) -> None:
        super().train()
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        super().eval()
        for layer in self.layers:
            layer.eval()

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # -------------------------------------------------------------- analysis
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def layer_shapes(self, input_shape: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Output shape after each layer (length equals ``len(self.layers)``)."""
        shapes = []
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append(shape)
        return shapes

    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        """Total multiply-accumulate count for one input sample."""
        total = 0
        shape = input_shape
        for layer in self.layers:
            total += layer.num_ops(shape)
            shape = layer.output_shape(shape)
        return total

    def summary(self, input_shape: tuple[int, ...]) -> str:
        """Human-readable per-layer summary table."""
        lines = [f"Model: {self.name}"]
        header = f"{'#':>3}  {'layer':<24} {'output shape':<18} {'params':>10} {'MACs':>14}"
        lines.append(header)
        lines.append("-" * len(header))
        shape = input_shape
        total_params = 0
        total_ops = 0
        for i, layer in enumerate(self.layers):
            ops = layer.num_ops(shape)
            shape = layer.output_shape(shape)
            params = layer.num_params()
            total_params += params
            total_ops += ops
            lines.append(
                f"{i:>3}  {layer.name:<24} {str(shape):<18} {params:>10,} {ops:>14,}"
            )
        lines.append("-" * len(header))
        lines.append(f"Total params: {total_params:,}   Total MACs: {total_ops:,}")
        return "\n".join(lines)

    # ---------------------------------------------------------- (de)serialise
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter name to value (copies)."""
        state = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.parameters()):
                state[f"{i}.{j}.{param.name}"] = param.value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.parameters()):
                own[f"{i}.{j}.{param.name}"] = param
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch; missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for key, param in own.items():
            value = np.asarray(state[key], dtype=np.float32)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"Shape mismatch for {key}: expected {param.value.shape}, got {value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)
