"""Weight initialisation schemes for the numpy DNN framework."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.rng import RNGLike, ensure_rng


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute fan-in / fan-out for dense and convolutional weight shapes."""
    if len(shape) == 2:  # dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_normal(shape: Sequence[int], rng: RNGLike = None) -> np.ndarray:
    """He (Kaiming) normal initialisation — suited to ReLU-family networks."""
    generator = ensure_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / max(fan_in, 1))
    return generator.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: Sequence[int], rng: RNGLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    generator = ensure_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return generator.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: Sequence[int], rng: RNGLike = None) -> np.ndarray:
    """All-zeros initialisation (biases, batch-norm shifts)."""
    del rng
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Sequence[int], rng: RNGLike = None) -> np.ndarray:
    """All-ones initialisation (batch-norm scales)."""
    del rng
    return np.ones(shape, dtype=np.float32)


_INITIALIZERS = {
    "he_normal": he_normal,
    "xavier_uniform": xavier_uniform,
    "zeros": zeros,
    "ones": ones,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises ``KeyError`` for unknown names."""
    if name not in _INITIALIZERS:
        raise KeyError(
            f"Unknown initializer '{name}'. Available: {sorted(_INITIALIZERS)}"
        )
    return _INITIALIZERS[name]
