"""Bounding-box regression head for the DAC-SDC-style detection task.

The DAC-SDC task is single-object detection: for every image the network
predicts one bounding box.  The head reduces the final feature map with a
1x1 convolution followed by global average pooling and a sigmoid, producing
four normalised coordinates ``(cx, cy, w, h)`` in ``[0, 1]``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pooling import GlobalAvgPool2D
from repro.nn.layers.activation import Sigmoid
from repro.utils.rng import RNGLike


class BBoxHead(Layer):
    """Single-object bounding-box regression head.

    Output shape is ``(N, 4)`` with coordinates ``(cx, cy, w, h)`` in
    ``[0, 1]`` relative to the image size.
    """

    layer_type = "head"

    def __init__(self, in_channels: int, rng: RNGLike = None, name: Optional[str] = None) -> None:
        super().__init__(name=name or "bbox_head")
        self.in_channels = in_channels
        self.conv = Conv2D(in_channels, 4, kernel_size=1, rng=rng, name=f"{self.name}.conv1x1")
        self.pool = GlobalAvgPool2D(name=f"{self.name}.gap")
        self.sigmoid = Sigmoid(name=f"{self.name}.sigmoid")

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.conv(x)
        out = self.pool(out)
        out = self.sigmoid(out)
        return out.reshape(out.shape[0], 4)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out.reshape(grad_out.shape[0], 4, 1, 1)
        grad = self.sigmoid.backward(grad)
        grad = self.pool.backward(grad)
        return self.conv.backward(grad)

    def parameters(self) -> Iterable[Parameter]:
        return list(self.conv.parameters())

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, _, _ = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        return (4,)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        return self.conv.num_ops(input_shape)

    def train(self) -> None:
        super().train()
        self.conv.train()
        self.pool.train()
        self.sigmoid.train()

    def eval(self) -> None:
        super().eval()
        self.conv.eval()
        self.pool.eval()
        self.sigmoid.eval()
