"""Layer zoo for the numpy DNN framework.

The layer types mirror the IP templates available to the FPGA accelerator:
standard convolutions (1x1 / 3x3 / 5x5), depth-wise convolutions
(3x3 / 5x5 / 7x7), max / average pooling, batch normalisation, and the
ReLU-family activations (ReLU, ReLU4, ReLU8) that the paper ties to
quantization bit widths.
"""

from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D, DepthwiseConv2D
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.activation import ReLU, ReLU4, ReLU8, ClippedReLU, Sigmoid
from repro.nn.layers.norm import BatchNorm2D
from repro.nn.layers.core import Dense, Dropout, Flatten
from repro.nn.layers.head import BBoxHead

__all__ = [
    "Layer",
    "Parameter",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "ReLU4",
    "ReLU8",
    "ClippedReLU",
    "Sigmoid",
    "BatchNorm2D",
    "Dense",
    "Dropout",
    "Flatten",
    "BBoxHead",
]
