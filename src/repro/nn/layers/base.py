"""Layer and Parameter abstractions.

Layers are stateful objects exposing ``forward`` / ``backward`` and a list of
trainable :class:`Parameter` objects.  Gradients are accumulated into
``Parameter.grad`` during the backward pass and consumed by the optimizers in
:mod:`repro.nn.optim`.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward`, :meth:`backward`,
    :meth:`output_shape`, and optionally override :meth:`num_ops` /
    :meth:`num_params` so that the hardware models can query workload sizes
    without running any data through the network.
    """

    #: short type tag used by the hardware mapping (e.g. ``"conv"``)
    layer_type: str = "generic"

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__
        self.training = True

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Iterable[Parameter]:
        """Trainable parameters of this layer (empty for stateless layers)."""
        return []

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of the output given an input shape ``(C, H, W)``."""
        return input_shape

    def num_params(self) -> int:
        """Number of trainable scalars in the layer."""
        return sum(p.size for p in self.parameters())

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        """Number of multiply-accumulate operations for one input sample."""
        del input_shape
        return 0

    # --------------------------------------------------------------- helpers
    def train(self) -> None:
        """Put the layer into training mode (affects dropout / batch norm)."""
        self.training = True

    def eval(self) -> None:
        """Put the layer into inference mode."""
        self.training = False

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
