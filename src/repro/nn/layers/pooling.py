"""Pooling layers: max, average, and global average pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.base import Layer


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (by default) square windows."""

    layer_type = "pool"

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name=name or f"maxpool{kernel_size}x{kernel_size}")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.max_pool_forward(x, self.kernel_size, self.stride)
        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, argmax = self._cache
        return F.max_pool_backward(grad_out, x_shape, argmax, self.kernel_size, self.stride)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, 0)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, out_h, out_w)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        c, out_h, out_w = self.output_shape(input_shape)
        return int(c * out_h * out_w * self.kernel_size**2)


class AvgPool2D(Layer):
    """Average pooling over square windows."""

    layer_type = "pool"

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name=name or f"avgpool{kernel_size}x{kernel_size}")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return F.avg_pool_forward(x, self.kernel_size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return F.avg_pool_backward(grad_out, self._x_shape, self.kernel_size, self.stride)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, 0)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, out_h, out_w)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        c, out_h, out_w = self.output_shape(input_shape)
        return int(c * out_h * out_w * self.kernel_size**2)


class GlobalAvgPool2D(Layer):
    """Global average pooling: reduces each feature map to a single value."""

    layer_type = "pool"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name or "globalavgpool")
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3), keepdims=True)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        return np.broadcast_to(grad_out / (h * w), self._x_shape).copy()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, _, _ = input_shape
        return (c, 1, 1)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        c, h, w = input_shape
        return int(c * h * w)
