"""Generic layers: flatten, dense, dropout."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter
from repro.utils.rng import RNGLike, ensure_rng


class Flatten(Layer):
    """Flatten ``(N, C, H, W)`` into ``(N, C*H*W)``."""

    layer_type = "reshape"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name or "flatten")
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Dense(Layer):
    """Fully connected layer operating on ``(N, features)`` inputs."""

    layer_type = "dense"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        initializer: str = "he_normal",
        rng: RNGLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or "dense")
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        init = get_initializer(initializer)
        self.weight = Parameter(init((in_features, out_features), rng=rng), name=f"{self.name}.weight")
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32), name=f"{self.name}.bias")
            if use_bias
            else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> Iterable[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.out_features,)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        del input_shape
        return int(self.in_features * self.out_features)


class Dropout(Layer):
    """Inverted dropout; identity during inference."""

    layer_type = "dropout"

    def __init__(self, rate: float = 0.5, rng: RNGLike = None, name: Optional[str] = None) -> None:
        super().__init__(name=name or "dropout")
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
