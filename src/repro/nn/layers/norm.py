"""Batch normalisation."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn.layers.base import Layer, Parameter


class BatchNorm2D(Layer):
    """Per-channel batch normalisation for ``NCHW`` tensors.

    During training the layer normalises with the batch statistics and keeps
    exponential moving averages; during inference it uses the running
    statistics (which is also what the FPGA accelerator folds into the
    preceding convolution weights at deployment time).
    """

    layer_type = "norm"

    def __init__(
        self,
        channels: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or "batchnorm")
        if channels <= 0:
            raise ValueError("channels must be positive")
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must be in (0, 1)")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels, dtype=np.float32), name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(channels, dtype=np.float32), name=f"{self.name}.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} channels, got {x.shape[1]}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var

        std = np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        out = self.gamma.value[None, :, None, None] * x_hat + self.beta.value[None, :, None, None]
        self._cache = (x_hat, std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        n, _, h, w = grad_out.shape
        m = n * h * w

        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))

        gamma = self.gamma.value[None, :, None, None]
        grad_xhat = grad_out * gamma
        # Standard batch-norm backward; the three terms correspond to the
        # direct path, the mean path, and the variance path.
        grad_in = (
            grad_xhat
            - grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
            - x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        ) / std[None, :, None, None]
        del m
        return grad_in

    def parameters(self) -> Iterable[Parameter]:
        return [self.gamma, self.beta]

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        return int(2 * np.prod(input_shape))
