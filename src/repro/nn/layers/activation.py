"""Activation layers.

The paper's fine-grained bundle evaluation (Fig. 5) varies the activation
between ReLU, ReLU4 and ReLU8.  Clipped activations bound the dynamic range
of the feature maps, which is what enables narrow fixed-point feature-map
quantization on the accelerator: ReLU4 supports 8-bit feature maps, while
unbounded ReLU needs 16-bit feature maps (see Fig. 6 annotations).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.base import Layer


class ClippedReLU(Layer):
    """ReLU with an optional upper bound ``clip``; ``clip=None`` is plain ReLU."""

    layer_type = "activation"

    #: feature-map bit width that the accelerator can use under this clip
    feature_map_bits: int = 16

    def __init__(self, clip: Optional[float] = None, name: Optional[str] = None) -> None:
        super().__init__(name=name or ("relu" if clip is None else f"relu{int(clip)}"))
        if clip is not None and clip <= 0:
            raise ValueError("clip must be positive or None")
        self.clip = clip
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.clipped_relu(x, self.clip)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.clipped_relu_grad(self._x, self.clip)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class ReLU(ClippedReLU):
    """Unbounded ReLU; requires 16-bit feature maps on the accelerator."""

    feature_map_bits = 16

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(clip=None, name=name or "relu")


class ReLU4(ClippedReLU):
    """ReLU clipped at 4; enables 8-bit feature maps on the accelerator."""

    feature_map_bits = 8

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(clip=4.0, name=name or "relu4")


class ReLU8(ClippedReLU):
    """ReLU clipped at 8; enables 10-bit feature maps on the accelerator."""

    feature_map_bits = 10

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(clip=8.0, name=name or "relu8")


class Sigmoid(Layer):
    """Logistic sigmoid; used by the bounding-box regression head."""

    layer_type = "activation"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name or "sigmoid")
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = F.sigmoid(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


ACTIVATION_REGISTRY = {
    "relu": ReLU,
    "relu4": ReLU4,
    "relu8": ReLU8,
    "sigmoid": Sigmoid,
}


def make_activation(name: str) -> Layer:
    """Instantiate an activation layer by its lower-case name."""
    key = name.lower()
    if key not in ACTIVATION_REGISTRY:
        raise KeyError(
            f"Unknown activation '{name}'. Available: {sorted(ACTIVATION_REGISTRY)}"
        )
    return ACTIVATION_REGISTRY[key]()
