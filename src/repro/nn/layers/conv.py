"""Convolutional layers: standard and depth-wise 2-D convolutions."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter
from repro.utils.rng import RNGLike


class Conv2D(Layer):
    """Standard 2-D convolution.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel size (1, 3 or 5 in the paper's IP pool, but any odd
        size is supported).
    stride:
        Spatial stride.
    padding:
        Zero padding; ``None`` selects "same" padding for stride 1.
    use_bias:
        Whether a per-channel bias is learned.
    """

    layer_type = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        use_bias: bool = True,
        initializer: str = "he_normal",
        rng: RNGLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or f"conv{kernel_size}x{kernel_size}")
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("Channel counts must be positive")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.use_bias = use_bias

        init = get_initializer(initializer)
        self.weight = Parameter(
            init((out_channels, in_channels, kernel_size, kernel_size), rng=rng),
            name=f"{self.name}.weight",
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32), name=f"{self.name}.bias")
            if use_bias
            else None
        )
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.value if self.bias is not None else None
        out, col = F.conv2d_forward(x, self.weight.value, bias, self.stride, self.padding)
        self._cache = (x.shape, col)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, col = self._cache
        grad_in, grad_w, grad_b = F.conv2d_backward(
            grad_out, x_shape, col, self.weight.value, self.stride, self.padding
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_in

    def parameters(self) -> Iterable[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        macs_per_pixel = self.in_channels * self.kernel_size**2
        return int(self.out_channels * out_h * out_w * macs_per_pixel)


class DepthwiseConv2D(Layer):
    """Depth-wise 2-D convolution (one filter per input channel)."""

    layer_type = "dwconv"

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        use_bias: bool = True,
        initializer: str = "he_normal",
        rng: RNGLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name or f"dwconv{kernel_size}x{kernel_size}")
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = channels
        self.in_channels = channels
        self.out_channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.use_bias = use_bias

        init = get_initializer(initializer)
        self.weight = Parameter(
            init((channels, 1, kernel_size, kernel_size), rng=rng),
            name=f"{self.name}.weight",
        )
        self.bias = (
            Parameter(np.zeros(channels, dtype=np.float32), name=f"{self.name}.bias")
            if use_bias
            else None
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.value if self.bias is not None else None
        out, cols = F.depthwise_conv2d_forward(
            x, self.weight.value, bias, self.stride, self.padding
        )
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        grad_in, grad_w, grad_b = F.depthwise_conv2d_backward(
            grad_out, x_shape, cols, self.weight.value, self.stride, self.padding
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_in

    def parameters(self) -> Iterable[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} input channels, got {c}"
            )
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, out_h, out_w)

    def num_ops(self, input_shape: tuple[int, ...]) -> int:
        c, out_h, out_w = self.output_shape(input_shape)
        return int(c * out_h * out_w * self.kernel_size**2)
