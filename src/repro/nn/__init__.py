"""Pure-numpy DNN framework used as the training/inference substrate.

The framework provides exactly the layer types that the paper's IP pool
supports (convolutions, depth-wise convolutions, pooling, normalisation,
ReLU-family activations) plus the bounding-box head needed for the DAC-SDC
object-detection task, with both forward and backward passes so candidate
DNNs can be trained end to end.
"""

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    BBoxHead,
    ClippedReLU,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
    ReLU4,
    ReLU8,
    Sigmoid,
)
from repro.nn.layers.activation import make_activation
from repro.nn.losses import IoULoss, L1Loss, MSELoss, SmoothL1Loss, make_loss
from repro.nn.model import Sequential
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn.quantization import (
    FLOAT32,
    W8A8,
    W8A10,
    W8A16,
    W16A16,
    FixedPointQuantizer,
    QuantizationScheme,
    quantize_model_weights,
    scheme_for_activation,
)
from repro.nn.training import Trainer, TrainingHistory, iterate_minibatches

__all__ = [
    "Layer",
    "Parameter",
    "Sequential",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "ReLU",
    "ReLU4",
    "ReLU8",
    "ClippedReLU",
    "Sigmoid",
    "Dense",
    "Dropout",
    "Flatten",
    "BBoxHead",
    "make_activation",
    "MSELoss",
    "L1Loss",
    "SmoothL1Loss",
    "IoULoss",
    "make_loss",
    "SGD",
    "Adam",
    "StepLR",
    "Trainer",
    "TrainingHistory",
    "iterate_minibatches",
    "QuantizationScheme",
    "FixedPointQuantizer",
    "quantize_model_weights",
    "scheme_for_activation",
    "W8A8",
    "W8A10",
    "W8A16",
    "W16A16",
    "FLOAT32",
]
