"""Training loop for the numpy DNN framework.

The trainer is deliberately simple: the co-design flow only needs short
"proxy" training runs (the paper trains candidate DNNs for 20 epochs during
bundle evaluation) to rank candidates, plus longer fine-tuning for the final
designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from repro.nn.losses import Loss, make_loss
from repro.nn.model import Sequential
from repro.nn.optim import Adam, Optimizer, StepLR
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, ensure_rng

logger = get_logger(__name__)


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and validation metrics."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_metric(self) -> float:
        """Best (maximum) validation metric seen, or ``nan`` when unavailable."""
        return max(self.val_metric) if self.val_metric else float("nan")


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: RNGLike = None,
    shuffle: bool = True,
) -> Iterable[tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches from ``(x, y)``, optionally shuffling each epoch."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same leading dimension")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(x))
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    for start in range(0, len(x), batch_size):
        batch = indices[start:start + batch_size]
        yield x[batch], y[batch]


class Trainer:
    """Mini-batch gradient-descent trainer for :class:`Sequential` models."""

    def __init__(
        self,
        model: Sequential,
        loss: Loss | str = "smooth_l1",
        optimizer: Optional[Optimizer] = None,
        lr: float = 1e-3,
        batch_size: int = 16,
        lr_step: Optional[int] = None,
        lr_gamma: float = 0.5,
        metric_fn: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
        rng: RNGLike = None,
    ) -> None:
        self.model = model
        self.loss = make_loss(loss) if isinstance(loss, str) else loss
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        self.scheduler = (
            StepLR(self.optimizer, step_size=lr_step, gamma=lr_gamma) if lr_step else None
        )
        self.batch_size = batch_size
        self.metric_fn = metric_fn
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------ train
    def train_epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One pass over the training data; returns the mean batch loss."""
        self.model.train()
        losses = []
        for xb, yb in iterate_minibatches(x, y, self.batch_size, rng=self.rng):
            self.optimizer.zero_grad()
            pred = self.model.forward(xb)
            loss_value, grad = self.loss(pred, yb)
            self.model.backward(grad)
            self.optimizer.step()
            losses.append(loss_value)
        return float(np.mean(losses)) if losses else 0.0

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """Return ``(loss, metric)`` on held-out data (metric ``nan`` if unset)."""
        self.model.eval()
        pred = self.model.forward(x)
        loss_value, _ = self.loss(pred, y)
        metric = self.metric_fn(pred, y) if self.metric_fn else float("nan")
        return loss_value, metric

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        epochs: int = 20,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the history."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        history = TrainingHistory()
        for epoch in range(epochs):
            train_loss = self.train_epoch(x_train, y_train)
            history.train_loss.append(train_loss)
            if x_val is not None and y_val is not None:
                val_loss, val_metric = self.evaluate(x_val, y_val)
                history.val_loss.append(val_loss)
                history.val_metric.append(val_metric)
                if verbose:
                    logger.info(
                        "epoch %d: train_loss=%.4f val_loss=%.4f val_metric=%.4f",
                        epoch, train_loss, val_loss, val_metric,
                    )
            elif verbose:
                logger.info("epoch %d: train_loss=%.4f", epoch, train_loss)
            if self.scheduler is not None:
                self.scheduler.step()
        return history
