"""Shared reporting helpers for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.tables import render_kv, render_table


@dataclass
class ExperimentReport:
    """A titled collection of tables / text blocks produced by one experiment."""

    title: str
    sections: list[str] = field(default_factory=list)

    def add_table(self, headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> None:
        self.sections.append(render_table(headers, rows, title=title or None))

    def add_kv(self, title: str, mapping: dict[str, object]) -> None:
        self.sections.append(render_kv(title, mapping))

    def add_text(self, text: str) -> None:
        self.sections.append(text)

    def render(self) -> str:
        """Full report as plain text."""
        bar = "=" * max(len(self.title), 20)
        return "\n".join([bar, self.title, bar, *self.sections])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


#: Calibration constant: the tile-pipeline simulator is optimistic relative
#: to the measured board (it does not model DDR contention with the ARM
#: cores, driver overheads, or frame pre-processing).  Board-scale latency
#: targets are divided by this factor when translated into model-scale
#: targets, and EXPERIMENTS.md records both scales.
MODEL_TO_BOARD_LATENCY_GAP = 2.4
