"""Fig. 4: coarse-grained bundle evaluation.

Reproduces both panels of Fig. 4: for every bundle candidate, a DNN is built
with construction method #1 (fixed head/tail plus one bundle replication) and
method #2 (the bundle replicated n times), evaluated for latency / resource /
accuracy under parallel factors {4, 8, 16}, and the per-resource-group Pareto
bundles are identified.  The paper's observation — both construction methods
produce (nearly) the same Pareto set, so the evaluation is reliable for
bundle selection — is checked explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.bundle import Bundle
from repro.core.bundle_evaluation import BundleEvaluation, BundleEvaluator
from repro.core.bundle_generation import default_bundle_catalog
from repro.detection.accuracy_model import AccuracyModel
from repro.detection.task import DAC_SDC_TASK, DetectionTask
from repro.experiments.reporting import ExperimentReport
from repro.hw.device import FPGADevice, PYNQ_Z1


@dataclass
class Fig4Result:
    """All data needed to regenerate Fig. 4 (a) and (b)."""

    method1: list[BundleEvaluation]
    method2: list[BundleEvaluation]
    pareto_method1: list[int]
    pareto_method2: list[int]
    selected: list[int]

    @property
    def pareto_overlap(self) -> float:
        """Jaccard overlap between the two methods' Pareto sets."""
        set1, set2 = set(self.pareto_method1), set(self.pareto_method2)
        if not set1 and not set2:
            return 1.0
        return len(set1 & set2) / len(set1 | set2)


def run_fig4(
    task: DetectionTask = DAC_SDC_TASK,
    device: FPGADevice = PYNQ_Z1,
    bundles: Optional[Sequence[Bundle]] = None,
    parallel_factors: Sequence[int] = (4, 8, 16),
    accuracy_model: Optional[AccuracyModel] = None,
    top_n: int = 5,
) -> Fig4Result:
    """Run the coarse-grained bundle evaluation for both construction methods."""
    bundles = list(bundles) if bundles is not None else default_bundle_catalog()
    evaluator = BundleEvaluator(task, device, accuracy_model=accuracy_model)
    method1 = evaluator.coarse_evaluate(bundles, parallel_factors=parallel_factors, method=1)
    method2 = evaluator.coarse_evaluate(bundles, parallel_factors=parallel_factors, method=2)
    pareto1 = BundleEvaluator.pareto_bundles(method1)
    pareto2 = BundleEvaluator.pareto_bundles(method2)
    selected = [b.bundle_id for b in evaluator.select_top_bundles(method1, top_n=top_n)]
    return Fig4Result(
        method1=method1,
        method2=method2,
        pareto_method1=pareto1,
        pareto_method2=pareto2,
        selected=selected,
    )


def report_fig4(result: Fig4Result) -> ExperimentReport:
    """Render the Fig. 4 data as the bubble-plot source tables."""
    report = ExperimentReport("Fig. 4 — coarse-grained bundle evaluation")
    for title, records, pareto in (
        ("(a) DNNs built with method #1 (fixed head/tail + 1 bundle)", result.method1, result.pareto_method1),
        ("(b) DNNs built with method #2 (bundle replicated n times)", result.method2, result.pareto_method2),
    ):
        rows = []
        for ev in sorted(records, key=lambda e: (e.bundle_id, e.parallel_factor)):
            rows.append([
                ev.bundle_id,
                ev.bundle.signature,
                ev.parallel_factor,
                f"{ev.latency_ms:.1f}",
                f"{ev.accuracy:.3f}",
                f"{ev.dsp:.0f}",
                "yes" if ev.bundle_id in pareto else "",
            ])
        report.add_table(
            ["bundle", "composition", "PF", "latency_ms", "IoU", "DSP", "pareto"],
            rows,
            title=title,
        )
    report.add_kv("Pareto stability across construction methods", {
        "pareto (method #1)": result.pareto_method1,
        "pareto (method #2)": result.pareto_method2,
        "overlap (Jaccard)": f"{result.pareto_overlap:.2f}",
        "selected top bundles": result.selected,
    })
    return report
