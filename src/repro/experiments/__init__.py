"""Experiment drivers that regenerate the paper's tables and figures.

Each module corresponds to one artefact of the evaluation section:

* :mod:`repro.experiments.fig4` — coarse-grained bundle evaluation (Fig. 4),
* :mod:`repro.experiments.fig5` — fine-grained bundle evaluation (Fig. 5),
* :mod:`repro.experiments.fig6` — DNN exploration for the 10/15/20 FPS
  targets (Fig. 6),
* :mod:`repro.experiments.table2` — the board-level comparison against the
  FPGA- and GPU-category contest winners (Table 2) and the headline claims,
* :mod:`repro.experiments.reference_designs` — the DNN1-3 configurations
  described in Fig. 6,
* :mod:`repro.experiments.ablations` — additional studies of the co-design
  choices (SCD vs. random search, tile-size sweep, quantization sweep).
"""

from repro.experiments.reference_designs import (
    reference_dnn1,
    reference_dnn2,
    reference_dnn3,
    reference_designs,
)

__all__ = [
    "reference_dnn1",
    "reference_dnn2",
    "reference_dnn3",
    "reference_designs",
]
