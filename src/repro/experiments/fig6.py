"""Fig. 6: hardware-aware DNN exploration for the 10 / 15 / 20 FPS targets.

Auto-DNN searches DNN candidates for each latency target using the selected
bundles; all explored DNNs whose latency falls inside the target band are
collected (the paper reports 68 such models built from 5 bundles), and the
best-accuracy candidate per target becomes the final design (DNN1-3).

Latency targets are specified at board scale (the paper's 10/15/20 FPS at
100 MHz) and converted to the model's scale with the calibration constant
``MODEL_TO_BOARD_LATENCY_GAP`` documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.auto_dnn import AutoDNN, DNNCandidate
from repro.core.bundle import Bundle
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget
from repro.detection.accuracy_model import AccuracyModel
from repro.detection.task import DAC_SDC_TASK, DetectionTask
from repro.experiments.fig5 import FIG5_BUNDLE_IDS
from repro.experiments.reporting import ExperimentReport, MODEL_TO_BOARD_LATENCY_GAP
from repro.hw.device import FPGADevice, PYNQ_Z1
from repro.utils.rng import RNGLike


@dataclass
class Fig6Result:
    """Explored DNNs per FPS target and the chosen final designs."""

    targets: list[LatencyTarget]
    board_fps_targets: list[float]
    candidates: dict[float, list[DNNCandidate]]
    best: dict[float, Optional[DNNCandidate]]

    @property
    def total_explored(self) -> int:
        return sum(len(v) for v in self.candidates.values())

    def best_accuracies(self) -> dict[float, float]:
        """Best IoU per board-scale FPS target (nan when no candidate)."""
        return {
            fps: (cand.accuracy if cand is not None else float("nan"))
            for fps, cand in self.best.items()
        }


def model_scale_target(board_fps: float, clock_mhz: float = 100.0, tolerance_ms: float = 6.0) -> LatencyTarget:
    """Translate a board-scale FPS target into a model-scale latency target."""
    board_latency_ms = 1000.0 / board_fps
    model_latency_ms = board_latency_ms / MODEL_TO_BOARD_LATENCY_GAP
    return LatencyTarget(
        fps=1000.0 / model_latency_ms,
        clock_mhz=clock_mhz,
        tolerance_ms=tolerance_ms,
    )


def run_fig6(
    task: DetectionTask = DAC_SDC_TASK,
    device: FPGADevice = PYNQ_Z1,
    board_fps_targets: Sequence[float] = (10.0, 15.0, 20.0),
    bundles: Optional[Sequence[Bundle]] = None,
    activations: Sequence[str] = ("relu4", "relu"),
    candidates_per_bundle: int = 2,
    max_iterations: int = 150,
    accuracy_model: Optional[AccuracyModel] = None,
    rng: RNGLike = 2019,
) -> Fig6Result:
    """Search DNNs for every FPS target with the selected bundles."""
    if bundles is None:
        bundles = [get_bundle(i) for i in FIG5_BUNDLE_IDS]
    auto_dnn = AutoDNN(task, device, accuracy_model=accuracy_model, rng=rng)

    targets = [model_scale_target(fps) for fps in board_fps_targets]
    candidates: dict[float, list[DNNCandidate]] = {}
    best: dict[float, Optional[DNNCandidate]] = {}
    for board_fps, target in zip(board_fps_targets, targets):
        found: list[DNNCandidate] = []
        for bundle in bundles:
            for activation in activations:
                found.extend(auto_dnn.search_bundle(
                    bundle, target, activation=activation,
                    num_candidates=candidates_per_bundle,
                    max_iterations=max_iterations,
                ))
        candidates[board_fps] = found
        best[board_fps] = max(found, key=lambda c: c.accuracy, default=None)
    return Fig6Result(
        targets=targets,
        board_fps_targets=list(board_fps_targets),
        candidates=candidates,
        best=best,
    )


def report_fig6(result: Fig6Result) -> ExperimentReport:
    """Render the exploration results: all candidates plus the final designs."""
    report = ExperimentReport("Fig. 6 — DNNs explored for the 10/15/20 FPS targets")
    rows = []
    for board_fps in result.board_fps_targets:
        for cand in sorted(result.candidates[board_fps], key=lambda c: -c.accuracy):
            cfg = cand.config
            rows.append([
                f"{board_fps:.0f} FPS",
                cfg.bundle.bundle_id,
                cfg.bundle.signature,
                cfg.num_repetitions,
                max(cfg.channel_schedule()),
                f"{cfg.feature_bits}-bit ({cfg.activation})",
                f"{cand.latency_ms:.1f}",
                f"{cand.fps:.1f}",
                f"{cand.accuracy:.3f}",
            ])
    report.add_table(
        ["target", "bundle", "composition", "reps", "max_ch", "feature map", "latency_ms", "FPS", "IoU"],
        rows,
    )
    final_rows = []
    for i, board_fps in enumerate(result.board_fps_targets, start=1):
        cand = result.best[board_fps]
        if cand is None:
            final_rows.append([f"DNN{i}", f"{board_fps:.0f} FPS", "-", "-", "-", "-", "-"])
            continue
        cfg = cand.config
        final_rows.append([
            f"DNN{i}",
            f"{board_fps:.0f} FPS",
            f"Bundle {cfg.bundle.bundle_id} <{cfg.bundle.signature}>",
            f"{cfg.num_repetitions} replications",
            f"max {max(cfg.channel_schedule())} channels",
            f"{cfg.feature_bits}-bit fm ({cfg.activation})",
            f"IoU {cand.accuracy:.3f}",
        ])
    report.add_table(
        ["design", "target", "bundle", "depth", "width", "quantization", "accuracy"],
        final_rows,
        title=f"Final designs ({result.total_explored} DNN models explored in total)",
    )
    return report
