"""The final designs DNN1-3 reported in Fig. 6 / Table 2.

Fig. 6 gives the structure of the three final designs:

* **DNN1** — Bundle 13 (dw-conv3x3 + conv1x1), 5 bundle replications,
  maximum 512 channels, 8-bit feature maps (ReLU4); targets 10 FPS.
* **DNN2** — Bundle 13, 4 replications, maximum 384 channels, 16-bit feature
  maps (ReLU); targets 15 FPS.
* **DNN3** — Bundle 13, 4 replications, maximum 384 channels, 8-bit feature
  maps (ReLU4); targets 20 FPS.

These reference configurations are used by the Table 2 experiment and by
tests; the search experiment (Fig. 6) re-discovers designs of the same shape
from scratch.
"""

from __future__ import annotations

from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.task import DAC_SDC_TASK, DetectionTask

#: Parallel factor that saturates the PYNQ-Z1 DSPs with 8-bit weights.
_REFERENCE_PF = 128


def reference_dnn1(task: DetectionTask = DAC_SDC_TASK) -> DNNConfig:
    """DNN1: the highest-accuracy design (10 FPS target)."""
    return DNNConfig(
        bundle=get_bundle(13),
        task=task,
        num_repetitions=5,
        channel_expansion=(2.0, 2.0, 2.0, 1.75, 1.3),
        downsample=(1, 1, 1, 0, 1),
        stem_channels=48,
        activation="relu4",
        weight_bits=8,
        parallel_factor=_REFERENCE_PF,
        max_channels=512,
        name="DNN1",
    )


def reference_dnn2(task: DetectionTask = DAC_SDC_TASK) -> DNNConfig:
    """DNN2: the balanced design (15 FPS target, 16-bit feature maps)."""
    return DNNConfig(
        bundle=get_bundle(13),
        task=task,
        num_repetitions=4,
        channel_expansion=(2.0, 2.0, 1.75, 1.3),
        downsample=(1, 1, 1, 1),
        stem_channels=48,
        activation="relu",
        weight_bits=8,
        parallel_factor=_REFERENCE_PF,
        max_channels=384,
        name="DNN2",
    )


def reference_dnn3(task: DetectionTask = DAC_SDC_TASK) -> DNNConfig:
    """DNN3: the highest-FPS design (20 FPS target)."""
    return DNNConfig(
        bundle=get_bundle(13),
        task=task,
        num_repetitions=4,
        channel_expansion=(2.0, 2.0, 1.75, 1.3),
        downsample=(1, 1, 1, 1),
        stem_channels=48,
        activation="relu4",
        weight_bits=8,
        parallel_factor=_REFERENCE_PF,
        max_channels=384,
        name="DNN3",
    )


def reference_designs(task: DetectionTask = DAC_SDC_TASK) -> list[DNNConfig]:
    """The three final designs, in the order of Table 2."""
    return [reference_dnn1(task), reference_dnn2(task), reference_dnn3(task)]
