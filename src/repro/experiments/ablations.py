"""Ablation studies of the co-design choices.

DESIGN.md calls out several design decisions whose contribution is worth
quantifying beyond the paper's headline results:

* **SCD vs. random search** — does the gradient-guided coordinate descent
  find in-band designs faster than uniformly random sampling of the same
  space?
* **Tile-size sweep** — how does the common tile size trade BRAM for
  latency?
* **Quantization sweep** — latency / resource / accuracy across the
  activation-linked feature-map bit widths.
* **Co-design vs. top-down** — the methodological comparison of Sec. 6:
  bottom-up co-designed DNNs against a compressed accuracy-first detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.topdown import TopDownFlow
from repro.baselines.workloads import ssd_compressed_workload
from repro.core.auto_dnn import AutoDNN
from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.constraints import LatencyTarget, ResourceConstraint
from repro.core.dnn_config import DNNConfig
from repro.core.scd import SCDUnit
from repro.detection.accuracy_model import AccuracyModel, SurrogateAccuracyModel
from repro.detection.task import DAC_SDC_TASK, DetectionTask
from repro.experiments.reference_designs import reference_dnn1, reference_dnn3
from repro.experiments.reporting import ExperimentReport
from repro.hw.device import FPGADevice, PYNQ_Z1
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.tiling import TileConfig
from repro.hw.pipeline import TilePipelineSimulator
from repro.utils.rng import RNGLike, ensure_rng


# --------------------------------------------------------------------------
# SCD vs random search
# --------------------------------------------------------------------------
@dataclass
class SearchComparison:
    """Iterations needed by SCD and by random search to find in-band designs."""

    scd_iterations: int
    scd_found: int
    random_iterations: int
    random_found: int
    target: LatencyTarget


def random_search(
    estimator,
    latency_target: LatencyTarget,
    resource_constraint: ResourceConstraint,
    initial: DNNConfig,
    num_candidates: int,
    max_iterations: int,
    rng: RNGLike = None,
) -> tuple[int, int]:
    """Uniformly random sampling baseline over the same coordinates as SCD."""
    generator = ensure_rng(rng)
    found = 0
    iterations = 0
    factors = (1.2, 1.3, 1.5, 1.75, 2.0)
    while found < num_candidates and iterations < max_iterations:
        iterations += 1
        reps = int(generator.integers(1, 9))
        expansion = tuple(float(factors[generator.integers(0, len(factors))]) for _ in range(reps))
        downsample = tuple(int(generator.integers(0, 2)) for _ in range(reps))
        if sum(downsample) == 0:
            downsample = (1,) + downsample[1:]
        candidate = initial.with_updates(
            num_repetitions=reps, channel_expansion=expansion, downsample=downsample
        )
        estimate = estimator(candidate)
        if latency_target.within_band(estimate.latency_ms) and resource_constraint.satisfied_by(
            estimate.resources
        ):
            found += 1
    return iterations, found


def run_scd_vs_random(
    task: DetectionTask = DAC_SDC_TASK,
    device: FPGADevice = PYNQ_Z1,
    board_fps: float = 20.0,
    num_candidates: int = 3,
    max_iterations: int = 200,
    rng: RNGLike = 11,
) -> SearchComparison:
    """Compare SCD against random search on one latency target."""
    from repro.experiments.fig6 import model_scale_target

    target = model_scale_target(board_fps)
    auto_hls = AutoHLS(device)
    constraint = ResourceConstraint.for_device(device)
    auto_dnn = AutoDNN(task, device, auto_hls=auto_hls, resource_constraint=constraint, rng=rng)
    initial = auto_dnn.initialize(get_bundle(13))

    scd = SCDUnit(auto_hls.estimate, target, constraint, max_iterations=max_iterations, rng=rng)
    scd_result = scd.search(initial, num_candidates=num_candidates)

    random_iters, random_found = random_search(
        auto_hls.estimate, target, constraint, initial,
        num_candidates=num_candidates, max_iterations=max_iterations, rng=rng,
    )
    return SearchComparison(
        scd_iterations=scd_result.iterations,
        scd_found=len(scd_result.candidates),
        random_iterations=random_iters,
        random_found=random_found,
        target=target,
    )


# --------------------------------------------------------------------------
# Tile-size sweep
# --------------------------------------------------------------------------
@dataclass
class TileSweepPoint:
    tile: TileConfig
    latency_ms: float
    bram: float
    fits: bool


def run_tile_sweep(
    config: Optional[DNNConfig] = None,
    device: FPGADevice = PYNQ_Z1,
    tiles: Sequence[TileConfig] = (
        TileConfig(8, 16), TileConfig(10, 20), TileConfig(16, 16),
        TileConfig(16, 32), TileConfig(20, 40),
    ),
) -> list[TileSweepPoint]:
    """Latency / BRAM trade-off of the common tile size for one design."""
    config = config or reference_dnn3()
    workload = config.to_workload()
    points: list[TileSweepPoint] = []
    for tile in tiles:
        accelerator = TileArchAccelerator.build(
            workload, device, parallel_factor=config.parallel_factor, tile=tile,
        )
        latency = TilePipelineSimulator(accelerator).latency_ms()
        resources = accelerator.resources()
        points.append(TileSweepPoint(
            tile=tile,
            latency_ms=latency,
            bram=resources.bram,
            fits=device.fits(resources),
        ))
    return points


# --------------------------------------------------------------------------
# Quantization sweep
# --------------------------------------------------------------------------
@dataclass
class QuantSweepPoint:
    activation: str
    feature_bits: int
    latency_ms: float
    bram: float
    accuracy: float


def run_quantization_sweep(
    device: FPGADevice = PYNQ_Z1,
    accuracy_model: Optional[AccuracyModel] = None,
    activations: Sequence[str] = ("relu", "relu8", "relu4"),
) -> list[QuantSweepPoint]:
    """Sweep the activation-linked feature-map bit width on the DNN1 structure."""
    accuracy_model = accuracy_model or SurrogateAccuracyModel()
    engine = AutoHLS(device)
    points: list[QuantSweepPoint] = []
    for activation in activations:
        config = reference_dnn1().with_updates(activation=activation, name=f"DNN1-{activation}")
        result = engine.generate(config)
        accuracy = accuracy_model.predict(config.features(epochs=200))
        points.append(QuantSweepPoint(
            activation=activation,
            feature_bits=config.feature_bits,
            latency_ms=result.report.latency_ms,
            bram=result.report.resources.bram,
            accuracy=accuracy,
        ))
    return points


# --------------------------------------------------------------------------
# Co-design vs top-down
# --------------------------------------------------------------------------
@dataclass
class MethodologyComparison:
    codesign_iou: float
    codesign_latency_ms: float
    topdown_iou: float
    topdown_latency_ms: float

    @property
    def iou_gain(self) -> float:
        return self.codesign_iou - self.topdown_iou


def run_codesign_vs_topdown(
    device: FPGADevice = PYNQ_Z1,
    accuracy_model: Optional[AccuracyModel] = None,
    latency_budget_ms: float = 40.0,
) -> MethodologyComparison:
    """Compare a co-designed DNN against the compressed SSD at a latency budget."""
    accuracy_model = accuracy_model or SurrogateAccuracyModel()
    engine = AutoHLS(device)

    codesign = reference_dnn1()
    codesign_result = engine.generate(codesign)
    codesign_iou = accuracy_model.predict(codesign.features(epochs=200))

    topdown = TopDownFlow(device, accuracy_model=accuracy_model)
    topdown_result = topdown.run(ssd_compressed_workload(), latency_budget_ms=latency_budget_ms)

    return MethodologyComparison(
        codesign_iou=codesign_iou,
        codesign_latency_ms=codesign_result.report.latency_ms,
        topdown_iou=topdown_result.accuracy,
        topdown_latency_ms=topdown_result.latency_ms,
    )


def report_ablations(
    search: SearchComparison,
    tiles: list[TileSweepPoint],
    quant: list[QuantSweepPoint],
    methodology: MethodologyComparison,
) -> ExperimentReport:
    """Render all ablations in one report."""
    report = ExperimentReport("Ablations — co-design design choices")
    report.add_kv("SCD vs random search (same target, same budget)", {
        "SCD iterations": search.scd_iterations,
        "SCD designs found": search.scd_found,
        "random iterations": search.random_iterations,
        "random designs found": search.random_found,
    })
    report.add_table(
        ["tile", "latency_ms", "BRAM blocks", "fits device"],
        [[str(p.tile), f"{p.latency_ms:.1f}", f"{p.bram:.0f}", p.fits] for p in tiles],
        title="Tile-size sweep (DNN3 structure)",
    )
    report.add_table(
        ["activation", "feature bits", "latency_ms", "BRAM blocks", "IoU"],
        [[p.activation, p.feature_bits, f"{p.latency_ms:.1f}", f"{p.bram:.0f}", f"{p.accuracy:.3f}"]
         for p in quant],
        title="Quantization sweep (DNN1 structure)",
    )
    report.add_kv("Co-design vs top-down (compressed SSD)", {
        "co-design IoU": f"{methodology.codesign_iou:.3f}",
        "co-design latency": f"{methodology.codesign_latency_ms:.1f} ms",
        "top-down IoU": f"{methodology.topdown_iou:.3f}",
        "top-down latency": f"{methodology.topdown_latency_ms:.1f} ms",
        "IoU gain from co-design": f"{methodology.iou_gain * 100:.1f}%",
    })
    return report
