"""Table 2: board-level comparison against the contest's FPGA and GPU entries.

For every row the experiment produces the same columns as the paper: IoU,
latency (at the row's clock), FPS, power, total energy over the 50K-image
evaluation set, energy per frame, and (for FPGA rows) resource utilization.

Our DNN1-3 rows are fully model-derived (surrogate accuracy + simulated
synthesis + power model).  Baseline rows are re-derived through the same
latency / power models from their reconstructed workloads so that the
comparison is internally consistent; their contest-reported numbers are kept
alongside, and the accuracy of a baseline is always its reported IoU (their
training pipelines are outside the scope of this reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.entries import ContestEntry, fpga_contest_entries, gpu_contest_entries
from repro.core.auto_hls import AutoHLS
from repro.core.dnn_config import DNNConfig
from repro.detection.accuracy_model import AccuracyModel, SurrogateAccuracyModel
from repro.detection.task import DAC_SDC_TASK, DetectionTask
from repro.experiments.reference_designs import reference_designs
from repro.experiments.reporting import ExperimentReport
from repro.gpu.device import JETSON_TX2
from repro.gpu.latency import GPULatencyModel
from repro.gpu.power import GPUPowerModel
from repro.hw.device import FPGADevice, PYNQ_Z1
from repro.hw.power import FPGAPowerModel
from repro.hw.tile_arch import TileArchAccelerator
from repro.hw.pipeline import TilePipelineSimulator

#: Per-frame host-side overhead (image loading and pre-processing on the PS),
#: included in the contest's FPS measurement.
HOST_OVERHEAD_MS = 1.5


@dataclass
class Table2Row:
    """One row of Table 2."""

    name: str
    category: str
    model_name: str
    iou: float
    latency_ms: float
    clock_mhz: float
    fps: float
    power_w: float
    energy_kj: float
    j_per_pic: float
    utilization: Optional[dict[str, float]] = None
    reported: Optional[ContestEntry] = None

    @property
    def energy_efficiency(self) -> float:
        """Frames per joule (higher is better)."""
        return 1.0 / self.j_per_pic if self.j_per_pic > 0 else float("inf")


@dataclass
class Table2Result:
    """All rows plus the derived headline claims."""

    our_rows: list[Table2Row]
    fpga_rows: list[Table2Row]
    gpu_rows: list[Table2Row]

    @property
    def all_rows(self) -> list[Table2Row]:
        return [*self.our_rows, *self.fpga_rows, *self.gpu_rows]

    def best_our_row(self) -> Table2Row:
        """Our highest-accuracy row (DNN1 at its highest clock)."""
        return max(self.our_rows, key=lambda r: (r.iou, r.fps))

    def headline_claims(self) -> dict[str, float]:
        """The summary comparisons the paper reports in Sec. 6.

        Claims are computed against the 1st-place FPGA entry and the GPU
        entries using our DNN1 (accuracy flagship) and the same-clock rows.
        """
        dnn1_rows = [r for r in self.our_rows if r.name.startswith("DNN1")]
        dnn1 = max(dnn1_rows, key=lambda r: r.fps)
        fpga1 = self.fpga_rows[0]
        gpu1 = self.gpu_rows[0]
        gpu_effs = [r.j_per_pic / dnn1.j_per_pic for r in self.gpu_rows]
        claims = {
            "iou_gain_vs_fpga1": dnn1.iou - fpga1.iou,
            "fps_ratio_vs_fpga1": dnn1.fps / fpga1.fps,
            "power_reduction_vs_fpga1": 1.0 - dnn1.power_w / fpga1.power_w,
            "energy_eff_ratio_vs_fpga1": fpga1.j_per_pic / dnn1.j_per_pic,
            "iou_gap_vs_gpu1": dnn1.iou - gpu1.iou,
            "energy_eff_ratio_vs_gpu1": gpu1.j_per_pic / dnn1.j_per_pic,
            "energy_eff_ratio_vs_gpu_min": min(gpu_effs),
            "energy_eff_ratio_vs_gpu_max": max(gpu_effs),
        }
        # Variants computed against the contest-reported baseline figures
        # instead of our model-derived ones (the board the 1st-place FPGA
        # team measured drew 4.2 W, far above what a uniform PYNQ-Z1 power
        # model predicts, so the paper's "40% lower power" claim only
        # reproduces against the reported number).
        if fpga1.reported is not None:
            reported = fpga1.reported
            claims["fps_ratio_vs_fpga1_reported"] = dnn1.fps / reported.reported_fps
            claims["power_reduction_vs_fpga1_reported"] = 1.0 - dnn1.power_w / reported.reported_power_w
            claims["energy_eff_ratio_vs_fpga1_reported"] = reported.reported_j_per_pic / dnn1.j_per_pic
        return claims


def _our_rows(
    designs: Sequence[DNNConfig],
    device: FPGADevice,
    clocks: Sequence[float],
    accuracy_model: AccuracyModel,
    num_frames: int,
) -> list[Table2Row]:
    engine = AutoHLS(device)
    power_model = FPGAPowerModel(device)
    rows: list[Table2Row] = []
    for config in designs:
        iou = accuracy_model.predict(config.features(epochs=200))
        for clock in clocks:
            result = engine.generate(config, clock_mhz=clock)
            report = result.report
            energy = power_model.energy_report(
                report.resources, clock, report.latency_ms,
                num_frames=num_frames, overhead_ms_per_frame=HOST_OVERHEAD_MS,
            )
            rows.append(Table2Row(
                name=f"{config.name} ({clock:.0f} MHz)",
                category="ours",
                model_name=f"Bundle {config.bundle.bundle_id}",
                iou=iou,
                latency_ms=report.latency_ms,
                clock_mhz=clock,
                fps=energy.fps,
                power_w=energy.power_w,
                energy_kj=energy.total_energy_kj,
                j_per_pic=energy.energy_per_frame_j,
                utilization=report.utilization.as_percent_dict(),
            ))
    return rows


def _fpga_baseline_rows(
    entries: Sequence[ContestEntry],
    device: FPGADevice,
    num_frames: int,
) -> list[Table2Row]:
    power_model = FPGAPowerModel(device)
    rows: list[Table2Row] = []
    for entry in entries:
        if entry.workload is None:
            continue
        accelerator = TileArchAccelerator.build(
            entry.workload, device, parallel_factor=128, clock_mhz=entry.clock_mhz,
        )
        latency = TilePipelineSimulator(accelerator).latency_ms()
        resources = accelerator.resources()
        energy = power_model.energy_report(
            resources, entry.clock_mhz, latency,
            num_frames=num_frames, overhead_ms_per_frame=HOST_OVERHEAD_MS,
        )
        rows.append(Table2Row(
            name=entry.name,
            category="fpga",
            model_name=entry.model_name,
            iou=entry.reported_iou,
            latency_ms=latency,
            clock_mhz=entry.clock_mhz,
            fps=energy.fps,
            power_w=energy.power_w,
            energy_kj=energy.total_energy_kj,
            j_per_pic=energy.energy_per_frame_j,
            utilization=device.utilization(resources).as_percent_dict(),
            reported=entry,
        ))
    return rows


def _gpu_baseline_rows(entries: Sequence[ContestEntry], num_frames: int) -> list[Table2Row]:
    latency_model = GPULatencyModel(JETSON_TX2)
    power_model = GPUPowerModel(JETSON_TX2)
    rows: list[Table2Row] = []
    for entry in entries:
        if entry.workload is None:
            continue
        latency = latency_model.latency_ms(entry.workload, precision_bytes=2.0)
        energy = power_model.energy_report(
            latency, num_frames=num_frames, overhead_ms_per_frame=HOST_OVERHEAD_MS
        )
        rows.append(Table2Row(
            name=entry.name,
            category="gpu",
            model_name=entry.model_name,
            iou=entry.reported_iou,
            latency_ms=latency,
            clock_mhz=entry.clock_mhz,
            fps=energy.fps,
            power_w=energy.power_w,
            energy_kj=energy.total_energy_kj,
            j_per_pic=energy.energy_per_frame_j,
            reported=entry,
        ))
    return rows


def run_table2(
    task: DetectionTask = DAC_SDC_TASK,
    device: FPGADevice = PYNQ_Z1,
    designs: Optional[Sequence[DNNConfig]] = None,
    clocks: Sequence[float] = (100.0, 150.0),
    accuracy_model: Optional[AccuracyModel] = None,
    num_frames: Optional[int] = None,
) -> Table2Result:
    """Build every row of Table 2."""
    designs = list(designs) if designs is not None else reference_designs(task)
    accuracy_model = accuracy_model or SurrogateAccuracyModel()
    num_frames = num_frames or task.dataset_size
    return Table2Result(
        our_rows=_our_rows(designs, device, clocks, accuracy_model, num_frames),
        fpga_rows=_fpga_baseline_rows(fpga_contest_entries(), device, num_frames),
        gpu_rows=_gpu_baseline_rows(gpu_contest_entries(), num_frames),
    )


def report_table2(result: Table2Result) -> ExperimentReport:
    """Render Table 2 plus the headline claims."""
    report = ExperimentReport("Table 2 — performance comparison (model-derived)")
    rows = []
    for row in result.all_rows:
        util = row.utilization or {}
        rows.append([
            row.name,
            row.model_name,
            f"{row.iou * 100:.1f}%",
            f"{row.latency_ms:.1f} ms ({row.clock_mhz:.0f} MHz)",
            f"{row.fps:.1f}",
            f"{row.power_w:.1f} W",
            f"{row.energy_kj:.2f} KJ",
            f"{row.j_per_pic:.3f} J/pic",
            f"{util.get('lut', float('nan')):.1f}%" if util else "-",
            f"{util.get('dsp', float('nan')):.1f}%" if util else "-",
            f"{util.get('bram', float('nan')):.1f}%" if util else "-",
            f"{util.get('ff', float('nan')):.1f}%" if util else "-",
        ])
    report.add_table(
        ["design", "model", "IoU", "latency", "FPS", "power", "energy", "J/pic",
         "LUT", "DSP", "BRAM", "FF"],
        rows,
    )
    claims = result.headline_claims()
    report.add_kv("Headline claims (ours DNN1 vs. baselines, model-derived)", {
        "IoU gain vs 1st-place FPGA": f"{claims['iou_gain_vs_fpga1'] * 100:.1f}%",
        "FPS ratio vs 1st-place FPGA": f"{claims['fps_ratio_vs_fpga1']:.2f}x",
        "power reduction vs 1st-place FPGA": f"{claims['power_reduction_vs_fpga1'] * 100:.0f}%",
        "energy-efficiency ratio vs 1st-place FPGA": f"{claims['energy_eff_ratio_vs_fpga1']:.2f}x",
        "IoU gap vs 1st-place GPU": f"{claims['iou_gap_vs_gpu1'] * 100:.1f}%",
        "energy-efficiency ratio vs GPUs": (
            f"{claims['energy_eff_ratio_vs_gpu_min']:.1f}x - "
            f"{claims['energy_eff_ratio_vs_gpu_max']:.1f}x"
        ),
    })
    if "power_reduction_vs_fpga1_reported" in claims:
        report.add_kv("Headline claims vs contest-reported baseline figures", {
            "FPS ratio vs 1st-place FPGA (reported)": f"{claims['fps_ratio_vs_fpga1_reported']:.2f}x",
            "power reduction vs 1st-place FPGA (reported 4.2 W)":
                f"{claims['power_reduction_vs_fpga1_reported'] * 100:.0f}%",
            "energy-efficiency ratio vs 1st-place FPGA (reported)":
                f"{claims['energy_eff_ratio_vs_fpga1_reported']:.2f}x",
        })
    reported_rows = []
    for row in [*result.fpga_rows, *result.gpu_rows]:
        if row.reported is None:
            continue
        entry = row.reported
        reported_rows.append([
            row.name,
            f"{entry.reported_iou * 100:.1f}%",
            f"{entry.reported_latency_ms:.1f} ms",
            f"{entry.reported_fps:.2f}",
            f"{entry.reported_power_w:.1f} W",
            f"{entry.reported_j_per_pic:.2f} J/pic",
            f"{row.latency_ms:.1f} ms",
            f"{row.fps:.1f}",
            f"{row.power_w:.1f} W",
            f"{row.j_per_pic:.3f} J/pic",
        ])
    report.add_table(
        ["baseline", "IoU (reported)", "latency (reported)", "FPS (reported)",
         "power (reported)", "J/pic (reported)",
         "latency (model)", "FPS (model)", "power (model)", "J/pic (model)"],
        reported_rows,
        title="Baseline rows: contest-reported vs model-derived",
    )
    return report
