"""Fig. 5: fine-grained evaluation of the selected bundles.

The selected bundles are evaluated with different replication counts and
different activation functions (ReLU / ReLU8 / ReLU4, which tie to
feature-map quantization).  The paper's observation: bundles 1 and 3 are
favourable for high-accuracy DNNs at the cost of resources and latency,
while bundle 13 is favourable for real-time DNNs with fewer resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.bundle import Bundle
from repro.core.bundle_evaluation import BundleEvaluator, FineGrainedEvaluation
from repro.core.bundle_generation import default_bundle_catalog, get_bundle
from repro.detection.accuracy_model import AccuracyModel
from repro.detection.task import DAC_SDC_TASK, DetectionTask
from repro.experiments.reporting import ExperimentReport
from repro.hw.device import FPGADevice, PYNQ_Z1

#: The bundles highlighted in Fig. 5 (the coarse-evaluation Pareto set).
FIG5_BUNDLE_IDS = (1, 3, 13, 15, 17)


@dataclass
class Fig5Result:
    """Fine-grained evaluation records plus per-bundle summaries."""

    evaluations: list[FineGrainedEvaluation]

    def per_bundle_extremes(self) -> dict[int, dict[str, float]]:
        """Per-bundle best accuracy and best latency across the swept settings."""
        summary: dict[int, dict[str, float]] = {}
        for ev in self.evaluations:
            entry = summary.setdefault(ev.bundle_id, {
                "best_accuracy": 0.0, "best_latency_ms": float("inf"),
            })
            entry["best_accuracy"] = max(entry["best_accuracy"], ev.accuracy)
            entry["best_latency_ms"] = min(entry["best_latency_ms"], ev.latency_ms)
        return summary

    def accuracy_leader(self) -> int:
        """Bundle ID with the highest achievable accuracy."""
        extremes = self.per_bundle_extremes()
        return max(extremes, key=lambda b: extremes[b]["best_accuracy"])

    def latency_leader(self) -> int:
        """Bundle ID with the lowest achievable latency."""
        extremes = self.per_bundle_extremes()
        return min(extremes, key=lambda b: extremes[b]["best_latency_ms"])


def run_fig5(
    task: DetectionTask = DAC_SDC_TASK,
    device: FPGADevice = PYNQ_Z1,
    bundles: Optional[Sequence[Bundle]] = None,
    activations: Sequence[str] = ("relu", "relu8", "relu4"),
    repetition_counts: Sequence[int] = (2, 3, 4),
    accuracy_model: Optional[AccuracyModel] = None,
) -> Fig5Result:
    """Run the fine-grained evaluation on the selected bundles."""
    if bundles is None:
        bundles = [get_bundle(i) for i in FIG5_BUNDLE_IDS]
    evaluator = BundleEvaluator(task, device, accuracy_model=accuracy_model)
    evaluations = evaluator.fine_evaluate(
        bundles, activations=activations, repetition_counts=repetition_counts
    )
    return Fig5Result(evaluations=evaluations)


def report_fig5(result: Fig5Result) -> ExperimentReport:
    """Render the Fig. 5 scatter data and the per-bundle characterisation."""
    report = ExperimentReport("Fig. 5 — fine-grained evaluation of selected bundles")
    rows = []
    for ev in sorted(result.evaluations, key=lambda e: (e.bundle_id, e.num_repetitions, e.activation)):
        rows.append([
            ev.bundle_id,
            ev.bundle.signature,
            ev.num_repetitions,
            ev.activation,
            f"{ev.latency_ms:.1f}",
            f"{ev.accuracy:.3f}",
            f"{ev.resources.dsp:.0f}",
            f"{ev.resources.bram:.0f}",
        ])
    report.add_table(
        ["bundle", "composition", "reps", "activation", "latency_ms", "IoU", "DSP", "BRAM"],
        rows,
    )
    extremes = result.per_bundle_extremes()
    report.add_kv("Bundle characteristics", {
        f"bundle {bid}": (
            f"best IoU {vals['best_accuracy']:.3f}, "
            f"best latency {vals['best_latency_ms']:.1f} ms"
        )
        for bid, vals in sorted(extremes.items())
    })
    report.add_kv("Leaders", {
        "accuracy-favourable bundle": result.accuracy_leader(),
        "latency/resource-favourable bundle": result.latency_leader(),
    })
    return report
