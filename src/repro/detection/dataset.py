"""Synthetic single-object detection dataset.

The DAC-SDC dataset (50K UAV images, one labelled object per image) is not
redistributable and far too large for a self-contained reproduction, so this
module generates synthetic images that exercise the same pipeline: an image
with textured background, one salient object (rectangle, ellipse or cross
shape with a distinct intensity), and a normalised ``(cx, cy, w, h)`` box
label.  The generator is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.utils.rng import RNGLike, ensure_rng

_SHAPES = ("rectangle", "ellipse", "cross")


@dataclass(frozen=True)
class DetectionSample:
    """One synthetic sample: an image and its ground-truth box."""

    image: np.ndarray  # (C, H, W) float32 in [0, 1]
    box: np.ndarray    # (4,) normalised (cx, cy, w, h)
    shape: str         # which object shape was drawn

    def __post_init__(self) -> None:
        if self.image.ndim != 3:
            raise ValueError("image must be (C, H, W)")
        if self.box.shape != (4,):
            raise ValueError("box must have 4 entries")


class SyntheticDetectionDataset:
    """Deterministic generator of single-object detection samples.

    Parameters
    ----------
    image_shape:
        ``(channels, height, width)`` of generated images.
    num_samples:
        Number of samples the dataset exposes.
    min_object_frac, max_object_frac:
        Bounds on object width/height as a fraction of image size; the
        DAC-SDC objects are small (UAV footage), hence the small defaults.
    noise_level:
        Standard deviation of the additive background noise.
    seed:
        RNG seed; the same seed always yields the same dataset.
    """

    def __init__(
        self,
        image_shape: tuple[int, int, int] = (3, 32, 64),
        num_samples: int = 256,
        min_object_frac: float = 0.15,
        max_object_frac: float = 0.45,
        noise_level: float = 0.05,
        seed: int = 0,
    ) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if not 0.0 < min_object_frac < max_object_frac <= 1.0:
            raise ValueError("object fraction bounds must satisfy 0 < min < max <= 1")
        if len(image_shape) != 3 or any(d <= 0 for d in image_shape):
            raise ValueError("image_shape must be a positive (C, H, W) triple")
        self.image_shape = image_shape
        self.num_samples = num_samples
        self.min_object_frac = min_object_frac
        self.max_object_frac = max_object_frac
        self.noise_level = noise_level
        self.seed = seed

    # ------------------------------------------------------------ generation
    def _draw_object(
        self, image: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, str]:
        """Draw one object into ``image`` (in place); returns (box, shape)."""
        c, h, w = image.shape
        obj_w = int(round(rng.uniform(self.min_object_frac, self.max_object_frac) * w))
        obj_h = int(round(rng.uniform(self.min_object_frac, self.max_object_frac) * h))
        obj_w = max(obj_w, 2)
        obj_h = max(obj_h, 2)
        x0 = int(rng.integers(0, max(w - obj_w, 1)))
        y0 = int(rng.integers(0, max(h - obj_h, 1)))
        shape = _SHAPES[int(rng.integers(0, len(_SHAPES)))]
        color = rng.uniform(0.6, 1.0, size=(c, 1)).astype(np.float32)

        yy, xx = np.mgrid[0:obj_h, 0:obj_w]
        if shape == "rectangle":
            mask = np.ones((obj_h, obj_w), dtype=bool)
        elif shape == "ellipse":
            cy_o, cx_o = (obj_h - 1) / 2.0, (obj_w - 1) / 2.0
            mask = ((yy - cy_o) / max(cy_o, 1)) ** 2 + ((xx - cx_o) / max(cx_o, 1)) ** 2 <= 1.0
        else:  # cross
            band_h = max(obj_h // 3, 1)
            band_w = max(obj_w // 3, 1)
            mask = (np.abs(yy - obj_h // 2) <= band_h // 2 + 1) | (
                np.abs(xx - obj_w // 2) <= band_w // 2 + 1
            )

        region = image[:, y0:y0 + obj_h, x0:x0 + obj_w]
        region[:, mask] = color

        box = np.array(
            [
                (x0 + obj_w / 2.0) / w,
                (y0 + obj_h / 2.0) / h,
                obj_w / w,
                obj_h / h,
            ],
            dtype=np.float32,
        )
        return box, shape

    def generate_sample(self, index: int) -> DetectionSample:
        """Generate the ``index``-th sample deterministically."""
        if not 0 <= index < self.num_samples:
            raise IndexError(f"index {index} out of range [0, {self.num_samples})")
        rng = ensure_rng(self.seed * 1_000_003 + index)
        c, h, w = self.image_shape
        # Textured background: low-frequency gradient plus noise.
        gy = np.linspace(0.0, 1.0, h)[None, :, None]
        gx = np.linspace(0.0, 1.0, w)[None, None, :]
        base = 0.25 * gy + 0.25 * gx
        image = np.broadcast_to(base, (c, h, w)).astype(np.float32).copy()
        image += rng.normal(0.0, self.noise_level, size=(c, h, w)).astype(np.float32)
        image = np.clip(image, 0.0, 1.0)
        box, shape = self._draw_object(image, rng)
        return DetectionSample(image=image, box=box, shape=shape)

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> DetectionSample:
        return self.generate_sample(index)

    def __iter__(self) -> Iterator[DetectionSample]:
        for i in range(self.num_samples):
            yield self.generate_sample(i)

    def as_arrays(self, indices: Sequence[int] | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(images, boxes)`` numpy arrays for training."""
        if indices is None:
            indices = range(self.num_samples)
        samples = [self.generate_sample(i) for i in indices]
        images = np.stack([s.image for s in samples])
        boxes = np.stack([s.box for s in samples])
        return images, boxes

    def train_val_split(
        self, val_fraction: float = 0.25
    ) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
        """Split into train / validation arrays.

        The split is deterministic: the last ``val_fraction`` of samples form
        the validation set.
        """
        if not 0.0 < val_fraction < 1.0:
            raise ValueError("val_fraction must be in (0, 1)")
        n_val = max(int(round(self.num_samples * val_fraction)), 1)
        n_train = self.num_samples - n_val
        if n_train <= 0:
            raise ValueError("val_fraction leaves no training samples")
        train = self.as_arrays(range(n_train))
        val = self.as_arrays(range(n_train, self.num_samples))
        return train, val
