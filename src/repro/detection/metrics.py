"""Intersection-over-Union metrics on ``(cx, cy, w, h)`` boxes."""

from __future__ import annotations

import numpy as np


def _to_corners(boxes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convert centre-format boxes to ``(x1, y1, x2, y2)`` corner arrays."""
    boxes = np.atleast_2d(np.asarray(boxes, dtype=np.float64))
    x1 = boxes[:, 0] - boxes[:, 2] / 2.0
    y1 = boxes[:, 1] - boxes[:, 3] / 2.0
    x2 = boxes[:, 0] + boxes[:, 2] / 2.0
    y2 = boxes[:, 1] + boxes[:, 3] / 2.0
    return x1, y1, x2, y2


def box_iou(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Element-wise IoU between two arrays of boxes.

    Parameters
    ----------
    pred, target:
        Arrays of shape ``(N, 4)`` (or a single box of shape ``(4,)``) in
        normalised centre format ``(cx, cy, w, h)``.

    Returns
    -------
    numpy.ndarray
        IoU per pair, shape ``(N,)``.
    """
    px1, py1, px2, py2 = _to_corners(pred)
    tx1, ty1, tx2, ty2 = _to_corners(target)
    if px1.shape != tx1.shape:
        raise ValueError("pred and target must contain the same number of boxes")

    ix1 = np.maximum(px1, tx1)
    iy1 = np.maximum(py1, ty1)
    ix2 = np.minimum(px2, tx2)
    iy2 = np.minimum(py2, ty2)
    inter = np.clip(ix2 - ix1, 0.0, None) * np.clip(iy2 - iy1, 0.0, None)

    area_p = np.clip(px2 - px1, 0.0, None) * np.clip(py2 - py1, 0.0, None)
    area_t = np.clip(tx2 - tx1, 0.0, None) * np.clip(ty2 - ty1, 0.0, None)
    union = area_p + area_t - inter
    iou = np.where(union > 0.0, inter / np.maximum(union, 1e-12), 0.0)
    return iou


def mean_iou(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean IoU over a batch — the DAC-SDC accuracy measure."""
    return float(np.mean(box_iou(pred, target)))
