"""Surrogate accuracy model for candidate DNNs.

Large-scale searches (hundreds of candidate DNNs, Fig. 6) cannot train every
candidate end to end inside this reproduction, just as the paper cannot
afford full training during search: the paper uses short proxy training (20
epochs) for bundle evaluation and full training only for the final
candidates.  We mirror this with two accuracy sources:

* :class:`repro.detection.proxy_trainer.ProxyTrainer` — actual training of
  the numpy model on synthetic data (used by tests, examples, and
  small-scale flows), and
* :class:`SurrogateAccuracyModel` (this module) — an analytical IoU
  predictor calibrated to the paper's reported numbers (Figs. 4-6, Table 2),
  used by the full-scale experiment drivers.

The surrogate captures the qualitative trends that drive the co-design
search:

* more capacity (MACs / parameters / channels / depth) -> higher IoU with
  diminishing returns,
* bundle composition matters: standard convolutions have the highest
  accuracy ceiling, depth-wise separable bundles come close at a fraction of
  the compute, and bundles without channel mixing (depth-wise only) or
  without spatial context (1x1 only) saturate at much lower IoU,
* clipped activations enable narrow feature maps at a small accuracy cost
  (ReLU > ReLU8 > ReLU4),
* short proxy training reaches only part of the final accuracy
  (training-maturity factor).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CandidateFeatures:
    """Structural features of a candidate DNN consumed by accuracy models.

    Attributes
    ----------
    macs:
        Multiply-accumulate operations per inference.
    params:
        Number of trainable parameters.
    depth:
        Number of computational (conv-like) layers.
    max_channels:
        Maximum channel width reached in the network.
    num_downsamples:
        Number of spatial down-sampling stages.
    feature_bits / weight_bits:
        Quantization bit widths (ties to the ReLU / ReLU4 / ReLU8 choice).
    bundle_signature:
        Composition string of the building block, e.g. ``"dwconv3x3+conv1x1"``.
    input_pixels:
        Input resolution (height * width).
    epochs:
        Training epochs the candidate would receive.
    """

    macs: float
    params: int
    depth: int
    max_channels: int
    num_downsamples: int
    feature_bits: int
    weight_bits: int
    bundle_signature: str
    input_pixels: int
    epochs: int = 200


class AccuracyModel:
    """Interface: predict the task accuracy (IoU) of a candidate DNN."""

    def predict(self, features: CandidateFeatures) -> float:
        raise NotImplementedError


#: Accuracy ceilings (IoU reachable with ample capacity and full training)
#: for the 18 bundle compositions used in the paper's experiments.  Values
#: are calibrated so that the reproduction reproduces the paper's Pareto
#: structure (Fig. 4/5) and final design accuracies (Fig. 6 / Table 2).
BUNDLE_CEILINGS: dict[str, float] = {
    "conv3x3+conv1x1": 0.742,
    "conv3x3+conv3x3": 0.746,
    "conv5x5+conv1x1": 0.756,
    "conv5x5+conv3x3": 0.752,
    "conv1x1+conv3x3": 0.726,
    "conv1x1+conv5x5": 0.738,
    "conv3x3": 0.712,
    "conv5x5": 0.722,
    "conv1x1": 0.560,
    "dwconv3x3": 0.452,
    "dwconv5x5": 0.466,
    "dwconv7x7": 0.476,
    "dwconv3x3+conv1x1": 0.724,
    "dwconv5x5+conv1x1": 0.728,
    "dwconv7x7+conv1x1": 0.734,
    "conv1x1+dwconv3x3": 0.700,
    "conv1x1+dwconv5x5": 0.712,
    "conv1x1+dwconv7x7": 0.718,
}

_SPATIAL_GAIN = {1: 0.0, 3: 0.10, 5: 0.13, 7: 0.15}


def _fallback_ceiling(signature: str) -> float:
    """Estimate an accuracy ceiling for a bundle composition not in the table.

    The heuristic rewards spatial context (kernel size), channel mixing
    (standard or 1x1 convolutions) and mild depth, and penalises bundles
    that lack either spatial context or channel mixing entirely.
    """
    parts = [p for p in signature.split("+") if p]
    if not parts:
        return 0.3
    spatial = 0.0
    mixing = 0.0
    for part in parts:
        is_dw = part.startswith("dw")
        kernel = 1
        for k in (7, 5, 3, 1):
            if f"{k}x{k}" in part:
                kernel = k
                break
        spatial = max(spatial, _SPATIAL_GAIN.get(kernel, 0.1))
        if not is_dw:
            mixing = 1.0
    base = 0.42 + spatial + (0.16 if mixing else 0.0)
    base += 0.012 * (len(parts) - 1)
    return min(base, 0.78)


def bundle_ceiling(signature: str) -> float:
    """Accuracy ceiling for a bundle composition string."""
    return BUNDLE_CEILINGS.get(signature, _fallback_ceiling(signature))


class SurrogateAccuracyModel(AccuracyModel):
    """Analytical IoU predictor calibrated to the paper's evaluation.

    Parameters
    ----------
    capacity_scale:
        GMAC count at which the capacity saturation reaches ~63% of the
        ceiling; smaller values mean accuracy saturates with less compute.
    depth_scale:
        Depth (computational layers) at which the depth factor saturates.
    maturity_epochs:
        Epoch constant of the training-maturity factor (proxy runs with 20
        epochs reach ~80% of converged accuracy).
    noise:
        Standard deviation of the deterministic per-candidate jitter (set to
        0 to disable).
    """

    def __init__(
        self,
        capacity_scale: float = 220.0,
        capacity_floor: float = 0.60,
        maturity_epochs: float = 7.0,
        noise: float = 0.006,
        seed: int = 2019,
    ) -> None:
        if capacity_scale <= 0 or maturity_epochs <= 0:
            raise ValueError("scale parameters must be positive")
        if not 0.0 <= capacity_floor < 1.0:
            raise ValueError("capacity_floor must be in [0, 1)")
        self.capacity_scale = capacity_scale
        self.capacity_floor = capacity_floor
        self.maturity_epochs = maturity_epochs
        self.noise = noise
        self.seed = seed

    # ------------------------------------------------------------ components
    def capacity_score(self, features: CandidateFeatures) -> float:
        """Joint capacity score combining compute, width and depth.

        The single-object detection task saturates quickly in each individual
        dimension, but the paper's final designs show that compute, width and
        depth all still contribute; the product captures that their benefits
        compound.
        """
        gmacs = max(features.macs, 0.0) / 1e9
        return gmacs * max(features.max_channels, 1) * max(features.depth, 1)

    def capacity_factor(self, features: CandidateFeatures) -> float:
        """Diminishing-returns factor in the joint capacity score.

        Even very small networks reach a substantial fraction of the ceiling
        on this task (the ``capacity_floor``), which matches the paper's
        coarse evaluation where single-bundle DNNs trained for 20 epochs
        already reach 0.4-0.6 IoU.
        """
        score = self.capacity_score(features)
        saturation = 1.0 - math.exp(-score / self.capacity_scale)
        return self.capacity_floor + (1.0 - self.capacity_floor) * saturation

    def quantization_factor(self, features: CandidateFeatures) -> float:
        """Accuracy retained after weight / feature-map quantization."""
        feature_penalty = {16: 1.0, 10: 0.985, 8: 0.969}.get(features.feature_bits)
        if feature_penalty is None:
            # Generic: ~1.5% loss per bit below 16, saturating.
            feature_penalty = max(0.80, 1.0 - 0.015 * max(16 - features.feature_bits, 0))
        weight_penalty = 1.0 if features.weight_bits >= 8 else max(
            0.82, 1.0 - 0.03 * (8 - features.weight_bits)
        )
        return feature_penalty * weight_penalty

    def downsample_factor(self, features: CandidateFeatures) -> float:
        """Penalise networks whose output stride is too small or too large.

        The detection head needs a sufficiently reduced feature map (global
        context) but collapsing too aggressively destroys localisation, so
        the penalty is asymmetric: exceeding the ideal output stride hurts
        much more than staying below it.
        """
        ds = features.num_downsamples
        ideal = 4.5
        spread = 12.0 if ds > ideal else 50.0
        return math.exp(-((ds - ideal) ** 2) / spread)

    def maturity_factor(self, features: CandidateFeatures) -> float:
        """Fraction of the converged accuracy reached after ``epochs`` epochs."""
        return 1.0 - math.exp(-max(features.epochs, 0) / self.maturity_epochs)

    def _jitter(self, features: CandidateFeatures) -> float:
        """Deterministic per-candidate jitter so plots show realistic scatter."""
        if self.noise <= 0:
            return 0.0
        key = (
            f"{features.bundle_signature}|{features.depth}|{features.max_channels}|"
            f"{features.num_downsamples}|{features.feature_bits}|{int(features.macs)}|{self.seed}"
        )
        digest = hashlib.sha256(key.encode()).digest()
        rng = ensure_rng(int.from_bytes(digest[:8], "little"))
        return float(rng.normal(0.0, self.noise))

    # ------------------------------------------------------------------ main
    def predict(self, features: CandidateFeatures) -> float:
        """Predicted IoU of the candidate, in ``[0, 1]``."""
        ceiling = bundle_ceiling(features.bundle_signature)
        value = (
            ceiling
            * self.capacity_factor(features)
            * self.downsample_factor(features)
            * self.quantization_factor(features)
            * self.maturity_factor(features)
        )
        value += self._jitter(features)
        return float(min(max(value, 0.0), 1.0))


class TrainedAccuracyModel(AccuracyModel):
    """Accuracy model backed by actual proxy training of the numpy DNN.

    The caller supplies a builder that turns :class:`CandidateFeatures` plus
    an opaque candidate object into a trainable model; this class exists so
    that the co-design engine can swap surrogate and trained evaluation
    behind one interface.
    """

    def __init__(self, trainer, builder) -> None:
        self._trainer = trainer
        self._builder = builder

    def predict(self, features: CandidateFeatures) -> float:
        model = self._builder(features)
        result = self._trainer.train(model)
        return result.iou


def blend(
    surrogate: float, trained: Optional[float], trained_weight: float = 0.5
) -> float:
    """Blend surrogate and (optional) trained accuracy estimates."""
    if trained is None or math.isnan(trained):
        return surrogate
    if not 0.0 <= trained_weight <= 1.0:
        raise ValueError("trained_weight must be in [0, 1]")
    return (1.0 - trained_weight) * surrogate + trained_weight * trained
