"""Proxy training of candidate DNNs.

During bundle evaluation the paper trains each candidate DNN directly on the
target task ("proxyless") for a small number of epochs (20) to obtain a fast
but reliable accuracy estimate.  :class:`ProxyTrainer` performs exactly that
with the numpy framework on the synthetic dataset; it is used by tests,
examples and small-scale searches, while large-scale searches use the
surrogate model in :mod:`repro.detection.accuracy_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.dataset import SyntheticDetectionDataset
from repro.detection.metrics import mean_iou
from repro.detection.task import DetectionTask
from repro.nn.model import Sequential
from repro.nn.training import Trainer, TrainingHistory
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class ProxyTrainingResult:
    """Outcome of a proxy training run."""

    iou: float
    history: TrainingHistory
    num_params: int
    num_ops: int


class ProxyTrainer:
    """Train a candidate DNN for a few epochs and report validation IoU.

    Parameters
    ----------
    task:
        The detection task; its ``input_shape`` must match the model.
    num_samples:
        Total synthetic samples generated for the proxy run.
    epochs:
        Training epochs (paper default: 20).
    batch_size, lr:
        Optimisation hyper-parameters.
    seed:
        RNG seed controlling both data generation and training shuffles.
    """

    def __init__(
        self,
        task: DetectionTask,
        num_samples: int = 128,
        epochs: int = 20,
        batch_size: int = 16,
        lr: float = 2e-3,
        loss: str = "smooth_l1",
        seed: int = 0,
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.task = task
        self.num_samples = num_samples
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.loss = loss
        self.seed = seed
        self._dataset = SyntheticDetectionDataset(
            image_shape=task.input_shape, num_samples=num_samples, seed=seed
        )

    def train(self, model: Sequential) -> ProxyTrainingResult:
        """Proxy-train ``model`` and return its validation IoU."""
        (x_train, y_train), (x_val, y_val) = self._dataset.train_val_split()
        trainer = Trainer(
            model,
            loss=self.loss,
            lr=self.lr,
            batch_size=self.batch_size,
            metric_fn=mean_iou,
            rng=self.seed,
        )
        history = trainer.fit(x_train, y_train, x_val, y_val, epochs=self.epochs)
        final_iou = history.val_metric[-1] if history.val_metric else float("nan")
        num_ops = model.num_ops(self.task.input_shape)
        result = ProxyTrainingResult(
            iou=float(final_iou),
            history=history,
            num_params=model.num_params(),
            num_ops=num_ops,
        )
        logger.debug(
            "Proxy training finished: iou=%.3f params=%d ops=%d",
            result.iou, result.num_params, result.num_ops,
        )
        return result

    def evaluate(self, model: Sequential) -> float:
        """Evaluate an already-trained model's IoU on the validation split."""
        _, (x_val, y_val) = self._dataset.train_val_split()
        model.eval()
        pred = model.forward(x_val)
        return mean_iou(pred, y_val)
