"""Object-detection task substrate (DAC-SDC-style single-object detection).

The paper evaluates on the 2018 DAC System Design Contest dataset: ~50K
images, each containing a single object of interest, scored by mean
Intersection-over-Union (IoU) of the predicted bounding box.  The official
dataset is not redistributable, so this package provides:

* :mod:`repro.detection.dataset` — a synthetic single-object dataset
  generator exercising the same input/label format and metric,
* :mod:`repro.detection.metrics` — IoU computation,
* :mod:`repro.detection.proxy_trainer` — short proxy-training runs used by
  bundle evaluation (the paper trains 20 epochs per candidate),
* :mod:`repro.detection.accuracy_model` — a calibrated surrogate accuracy
  predictor used for full-scale searches where training every candidate
  end-to-end would be prohibitively slow.
"""

from repro.detection.dataset import DetectionSample, SyntheticDetectionDataset
from repro.detection.metrics import box_iou, mean_iou
from repro.detection.task import DetectionTask, DAC_SDC_TASK
from repro.detection.proxy_trainer import ProxyTrainer, ProxyTrainingResult
from repro.detection.accuracy_model import AccuracyModel, SurrogateAccuracyModel

__all__ = [
    "DetectionSample",
    "SyntheticDetectionDataset",
    "box_iou",
    "mean_iou",
    "DetectionTask",
    "DAC_SDC_TASK",
    "ProxyTrainer",
    "ProxyTrainingResult",
    "AccuracyModel",
    "SurrogateAccuracyModel",
]
