"""Machine-learning task descriptions consumed by the co-design flow.

The co-design flow (Fig. 1) takes the target ML task as an input; the task
object carries the information the flow needs: input resolution, number of
output values, the dataset size used for throughput accounting (the contest
measures FPS over 50K images), and the metric name.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DetectionTask:
    """Single-object detection task description.

    Attributes
    ----------
    name:
        Human-readable identifier.
    input_shape:
        Network input as ``(channels, height, width)``.
    num_outputs:
        Number of regression outputs (4 box coordinates).
    dataset_size:
        Number of evaluation images used for end-to-end FPS / energy
        accounting (50 000 for DAC-SDC).
    metric:
        Accuracy metric name (``"iou"``).
    """

    name: str
    input_shape: tuple[int, int, int]
    num_outputs: int = 4
    dataset_size: int = 50_000
    metric: str = "iou"

    def __post_init__(self) -> None:
        if len(self.input_shape) != 3:
            raise ValueError("input_shape must be (channels, height, width)")
        if any(d <= 0 for d in self.input_shape):
            raise ValueError("input_shape entries must be positive")
        if self.num_outputs <= 0:
            raise ValueError("num_outputs must be positive")
        if self.dataset_size <= 0:
            raise ValueError("dataset_size must be positive")

    @property
    def input_pixels(self) -> int:
        """Number of pixels in one input frame."""
        _, h, w = self.input_shape
        return h * w

    def scaled(self, height: int, width: int) -> "DetectionTask":
        """Return a copy of the task at a different input resolution."""
        c, _, _ = self.input_shape
        return DetectionTask(
            name=self.name,
            input_shape=(c, height, width),
            num_outputs=self.num_outputs,
            dataset_size=self.dataset_size,
            metric=self.metric,
        )


#: The DAC-SDC 2018 object-detection task used throughout the paper.
#: Input frames are resized to 160x320 (the aspect ratio of the 360x640
#: contest images) before inference, matching edge-scale deployments.
DAC_SDC_TASK = DetectionTask(
    name="dac-sdc-2018-object-detection",
    input_shape=(3, 160, 320),
    num_outputs=4,
    dataset_size=50_000,
    metric="iou",
)

#: A reduced-resolution variant used by tests and quick examples.
TINY_DETECTION_TASK = DetectionTask(
    name="tiny-object-detection",
    input_shape=(3, 32, 64),
    num_outputs=4,
    dataset_size=1_000,
    metric="iou",
)
