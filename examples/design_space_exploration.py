"""Design-space exploration studies around the paper's final designs.

Three sweeps that illustrate how the co-design variables (Table 1) shape the
implementation of the paper's DNN1 structure:

* **device sweep** — the same DNN mapped to PYNQ-Z1, Ultra96 and ZC706,
* **quantization sweep** — ReLU / ReLU8 / ReLU4 (16 / 10 / 8-bit feature
  maps) and their latency / BRAM / accuracy trade-off,
* **parallel-factor sweep** — latency and DSP/LUT utilization as PF grows
  until the device is saturated.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.core.auto_hls import AutoHLS
from repro.detection.accuracy_model import SurrogateAccuracyModel
from repro.experiments.reference_designs import reference_dnn1
from repro.hw.device import PYNQ_Z1, ULTRA96, ZC706
from repro.utils.tables import render_table


def device_sweep() -> str:
    rows = []
    for device in (PYNQ_Z1, ULTRA96, ZC706):
        engine = AutoHLS(device)
        config = reference_dnn1()
        report = engine.generate(config).report
        util = report.utilization.as_percent_dict()
        rows.append([
            device.name,
            f"{device.default_clock_mhz:.0f} MHz",
            f"{report.latency_ms:.1f} ms",
            f"{report.fps:.1f}",
            f"{util['dsp']:.0f}%",
            f"{util['bram']:.0f}%",
            "yes" if report.meets_timing else "no",
        ])
    return render_table(
        ["device", "clock", "latency", "FPS", "DSP", "BRAM", "timing met"],
        rows,
        title="DNN1 mapped to different embedded FPGAs",
    )


def quantization_sweep() -> str:
    engine = AutoHLS(PYNQ_Z1)
    accuracy_model = SurrogateAccuracyModel()
    rows = []
    for activation in ("relu", "relu8", "relu4"):
        config = reference_dnn1().with_updates(activation=activation, name=f"DNN1-{activation}")
        report = engine.generate(config).report
        accuracy = accuracy_model.predict(config.features(epochs=200))
        rows.append([
            activation,
            f"{config.feature_bits}-bit",
            f"{report.latency_ms:.1f} ms",
            f"{report.resources.bram:.0f}",
            f"{accuracy:.3f}",
        ])
    return render_table(
        ["activation", "feature map", "latency", "BRAM blocks", "IoU"],
        rows,
        title="Activation-linked quantization trade-off (DNN1 structure)",
    )


def parallel_factor_sweep() -> str:
    engine = AutoHLS(PYNQ_Z1)
    rows = []
    for pf in (16, 32, 64, 128, 256):
        config = reference_dnn1().with_updates(parallel_factor=pf, name=f"DNN1-pf{pf}")
        accelerator = engine.build_accelerator(config)
        report = engine.generate(config).report
        util = report.utilization.as_percent_dict()
        rows.append([
            pf,
            f"{report.latency_ms:.1f} ms",
            f"{util['dsp']:.0f}%",
            f"{util['lut']:.0f}%",
            "yes" if accelerator.fits() else "no",
        ])
    return render_table(
        ["PF", "latency", "DSP", "LUT", "fits PYNQ-Z1"],
        rows,
        title="Parallel-factor sweep (DNN1 structure on PYNQ-Z1)",
    )


def main() -> None:
    print(device_sweep())
    print()
    print(quantization_sweep())
    print()
    print(parallel_factor_sweep())


if __name__ == "__main__":
    main()
