"""Train a searched DNN on synthetic detection data and deploy it (Fig. 7 style).

The co-design flow outputs two artefacts per design: the DNN model (software)
and its FPGA accelerator (hardware).  This example exercises the full
software-to-hardware path on a small configuration:

1. build the numpy model for a bundle-based DNN configuration,
2. train it on the synthetic single-object detection dataset,
3. report the validation IoU and show predicted vs ground-truth boxes for a
   few images (the qualitative result Fig. 7 shows on the board),
4. quantize the trained weights with the activation-linked fixed-point scheme,
5. generate the accelerator C code and the synthesis report, and write the
   files to ``./generated/``.

Run with::

    python examples/train_and_deploy.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.core.dnn_config import DNNConfig
from repro.detection.dataset import SyntheticDetectionDataset
from repro.detection.metrics import box_iou, mean_iou
from repro.detection.task import TINY_DETECTION_TASK
from repro.hw.device import PYNQ_Z1
from repro.nn import Trainer
from repro.nn.quantization import quantize_model_weights, scheme_for_activation


def format_box(box: np.ndarray) -> str:
    cx, cy, w, h = box
    return f"(cx={cx:.2f}, cy={cy:.2f}, w={w:.2f}, h={h:.2f})"


def main() -> None:
    # A small configuration on the reduced-resolution task so training takes
    # seconds; the structure mirrors the paper's DNN3 (bundle 13, ReLU4).
    config = DNNConfig(
        bundle=get_bundle(13),
        task=TINY_DETECTION_TASK,
        num_repetitions=2,
        channel_expansion=(2.0, 1.5),
        downsample=(1, 1),
        stem_channels=16,
        activation="relu4",
        weight_bits=8,
        parallel_factor=32,
        max_channels=64,
        name="tiny_dnn3",
    )
    print(f"Design: {config.describe()}\n")

    # ------------------------------------------------------------ software
    dataset = SyntheticDetectionDataset(
        image_shape=config.task.input_shape, num_samples=192, seed=7
    )
    (x_train, y_train), (x_val, y_val) = dataset.train_val_split()

    model = config.to_model(rng=0)
    trainer = Trainer(model, loss="smooth_l1", lr=2e-3, batch_size=16, metric_fn=mean_iou, rng=0)
    history = trainer.fit(x_train, y_train, x_val, y_val, epochs=20, verbose=False)
    print(f"Training: {history.epochs} epochs, "
          f"final val IoU = {history.val_metric[-1]:.3f} "
          f"(best {history.best_metric():.3f})")

    # Qualitative check: predicted vs ground-truth boxes (Fig. 7 shows these
    # drawn on the board's output frames).
    model.eval()
    preds = model.forward(x_val[:4])
    print("\nPredicted vs ground-truth boxes on 4 validation images:")
    for i, (pred, truth) in enumerate(zip(preds, y_val[:4])):
        iou = box_iou(pred, truth)[0]
        print(f"  image {i}: pred {format_box(pred)}  truth {format_box(truth)}  IoU={iou:.2f}")

    # Quantize the trained weights for deployment.
    scheme = scheme_for_activation(config.activation, config.weight_bits)
    quantize_model_weights(model, scheme)
    quantized_iou = mean_iou(model.forward(x_val), y_val)
    print(f"\nAfter {scheme.name} weight quantization: val IoU = {quantized_iou:.3f}")

    # ------------------------------------------------------------ hardware
    engine = AutoHLS(PYNQ_Z1)
    result = engine.generate(config)
    print(f"\nAccelerator: {result.report.summary()}")

    output_dir = pathlib.Path("generated") / config.name
    paths = result.design.write_to(output_dir)
    print("Generated HLS files:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
