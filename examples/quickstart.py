"""Quickstart: evaluate one hardware-aware DNN candidate end to end.

This example walks through the core objects of the library in a few lines:

1. pick a Bundle (the hardware-aware building block),
2. describe a candidate DNN built from it (replications, channel expansion,
   down-sampling, activation / quantization, parallel factor),
3. estimate its FPGA latency / resource usage with the analytical models,
4. predict its detection accuracy with the calibrated surrogate,
5. generate the synthesizable-style accelerator C code with Auto-HLS.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DNNConfig, PYNQ_Z1, SurrogateAccuracyModel
from repro.core.auto_hls import AutoHLS
from repro.core.bundle_generation import get_bundle
from repro.detection.task import DAC_SDC_TASK


def main() -> None:
    # 1. The bundle the paper's final designs use: dw-conv3x3 + conv1x1.
    bundle = get_bundle(13)
    print(f"Bundle        : {bundle.display_name}")

    # 2. A candidate DNN: 4 replications, channels growing 2x / 2x / 1.75x /
    #    1.3x, a down-sampling spot before each replication, ReLU4 (8-bit
    #    feature maps) and 8-bit weights, PF=128.
    config = DNNConfig(
        bundle=bundle,
        task=DAC_SDC_TASK,
        num_repetitions=4,
        channel_expansion=(2.0, 2.0, 1.75, 1.3),
        downsample=(1, 1, 1, 1),
        stem_channels=48,
        activation="relu4",
        weight_bits=8,
        parallel_factor=128,
        max_channels=384,
        name="quickstart-dnn",
    )
    print(f"Candidate     : {config.describe()}")

    workload = config.to_workload()
    print(f"Workload      : {workload.total_macs / 1e6:.1f} MMACs, "
          f"{workload.total_params / 1e3:.0f}K parameters, "
          f"{len(workload.layers)} layers")

    # 3. Hardware estimation on the PYNQ-Z1.
    engine = AutoHLS(PYNQ_Z1)
    estimate = engine.estimate(config)
    print(f"Analytical    : {estimate.latency_ms:.1f} ms "
          f"({estimate.fps:.1f} FPS) at {PYNQ_Z1.default_clock_mhz:.0f} MHz")

    # 4. Accuracy prediction with the calibrated surrogate.
    accuracy = SurrogateAccuracyModel().predict(config.features(epochs=200))
    print(f"Predicted IoU : {accuracy:.3f}")

    # 5. Full Auto-HLS generation: C code + simulated synthesis report.
    result = engine.generate(config)
    print(f"Synthesis     : {result.report.summary()}")
    print(f"Generated code: {result.design.total_lines} lines of HLS C "
          f"({', '.join(result.design.files)})")
    print()
    print("First lines of the generated accelerator source:")
    print("\n".join(result.design.source.splitlines()[:12]))


if __name__ == "__main__":
    main()
