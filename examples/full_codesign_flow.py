"""Run the full three-step FPGA/DNN co-design flow (the paper's Fig. 1).

The flow takes the detection task, the PYNQ-Z1 resource budget and a set of
throughput targets, then:

* Step 1 fits the analytical latency / resource models via Auto-HLS sampling,
* Step 2 evaluates the 18 bundle candidates (coarse + fine grained) and
  selects the most promising ones,
* Step 3 searches DNNs with stochastic coordinate descent under each latency
  target and generates their accelerators.

The settings below are reduced (fewer candidates / iterations) so the example
finishes in a few seconds; crank them up to reproduce the full Fig. 6 sweep.

Run with::

    python examples/full_codesign_flow.py
"""

from __future__ import annotations

from repro import CoDesignFlow, CoDesignInputs, LatencyTarget, PYNQ_Z1
from repro.detection.task import DAC_SDC_TASK
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    inputs = CoDesignInputs(
        task=DAC_SDC_TASK,
        device=PYNQ_Z1,
        latency_targets=(
            LatencyTarget(fps=30.0, tolerance_ms=6.0),
            LatencyTarget(fps=40.0, tolerance_ms=5.0),
            LatencyTarget(fps=55.0, tolerance_ms=4.0),
        ),
    )
    flow = CoDesignFlow(
        inputs,
        candidates_per_bundle=2,
        top_n_bundles=3,
        scd_iterations=150,
        rng=2019,
    )
    result = flow.run()

    print()
    print(result.summary())
    print()

    print("Selected bundles after coarse/fine evaluation:")
    for bundle in result.selected_bundles:
        print(f"  {bundle.display_name}")
    print()

    print("Final designs (best candidate per latency target):")
    for target, candidate in result.best_per_target.items():
        if candidate is None:
            print(f"  {target}: no design met the target band")
            continue
        report = candidate.hls.report
        util = report.utilization.as_percent_dict()
        print(f"  {target}")
        print(f"    structure : {candidate.config.describe()}")
        print(f"    IoU       : {candidate.accuracy:.3f}")
        print(f"    latency   : {report.latency_ms:.1f} ms ({report.fps:.1f} FPS)")
        print(f"    resources : LUT {util['lut']:.0f}%  DSP {util['dsp']:.0f}%  "
              f"BRAM {util['bram']:.0f}%  FF {util['ff']:.0f}%")


if __name__ == "__main__":
    main()
